"""Fair-share scheduling: deficit round robin over one worker fleet.

Two layers, deliberately separated:

:class:`DeficitRoundRobin`
    The pure, synchronous scheduling core — no asyncio, no threads, no
    clocks.  Tenant queues hold :class:`Shard`\\ s (cost-weighted work
    units); each round-robin visit grants a queue ``quantum × weight``
    of deficit credit, a shard dispatches when its cost fits the
    accumulated deficit, and unspent deficit carries over — the classic
    DRR guarantee that a queue's long-run share of dispatched cost is
    proportional to its weight while no queue ever starves (every visit
    strictly grows the deficit until the head shard fits).  Being pure,
    its exact dispatch order is a deterministic function of the
    push/next call sequence — which is what the scheduler unit tests
    pin, hypothesis sweeps included.

:class:`FairShareScheduler`
    The asyncio wrapper: an event-loop dispatch task that waits for a
    fleet slot (:class:`WorkerFleet`, a bounded thread pool), asks the
    DRR core which shard goes next, and runs the shard's callable in an
    executor thread — so scheduling decisions happen at slot-grant
    time, under whatever mix of campaigns is queued *then*, while the
    event loop never blocks on measurement work.

Quanta are sized from the engine's probe cost model: each campaign
registers the mean expected cost of its shards as a *quantum hint*, and
the effective quantum is the largest hint among active queues — so one
visit grants roughly "one typical shard" of credit and a heavy-shard
campaign cannot wedge behind a deficit that grows in microscopic steps.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError

__all__ = [
    "DeficitRoundRobin",
    "FairShareScheduler",
    "Shard",
    "WorkerFleet",
]


@dataclass
class Shard:
    """One cost-weighted unit of schedulable work.

    The service builds shards as facet-homogeneous chunks of a
    campaign's :class:`~repro.exec.jobs.PairJob` grid; ``fn`` measures
    the chunk (in a fleet thread) and returns its results.  The DRR
    core only reads ``queue`` and ``cost``.
    """

    #: tenant queue the shard bills against
    queue: str
    #: expected virtual cost (probe cost model), the DRR currency
    cost: float
    #: the work itself, run on a fleet thread (``None`` in pure tests)
    fn: Callable | None = None
    #: submission sequence number (stable ordering/debugging aid)
    seq: int = 0
    #: resolved with ``fn``'s return value by the async scheduler
    future: "asyncio.Future | None" = None


@dataclass
class _TenantQueue:
    weight: float
    quantum_hint: float = 0.0
    deficit: float = 0.0
    #: whether this round's visit credit was already granted
    credited: bool = False
    items: deque = field(default_factory=deque)


class DeficitRoundRobin:
    """The pure DRR core: ``add_queue`` / ``push`` / ``next``.

    Not thread-safe by design — the async wrapper only calls it from
    the event loop, and tests drive it synchronously.
    """

    def __init__(self) -> None:
        self._queues: dict[str, _TenantQueue] = {}
        #: visit order; holds exactly the keys of non-empty queues
        self._ring: deque[str] = deque()

    # ------------------------------------------------------------------
    def add_queue(
        self, key: str, weight: float = 1.0, quantum_hint: float = 0.0
    ) -> None:
        """Register a tenant queue (idempotent; updates weight/hint)."""
        if not weight > 0:
            raise ConfigError(f"queue weight must be > 0, got {weight}")
        queue = self._queues.get(key)
        if queue is None:
            self._queues[key] = _TenantQueue(
                weight=weight, quantum_hint=float(quantum_hint)
            )
        else:
            queue.weight = weight
            queue.quantum_hint = max(
                queue.quantum_hint, float(quantum_hint)
            )

    def remove_queue(self, key: str) -> list[Shard]:
        """Drop a queue; returns (and discards) its pending shards."""
        queue = self._queues.pop(key, None)
        if queue is None:
            return []
        try:
            self._ring.remove(key)
        except ValueError:
            pass
        return list(queue.items)

    def push(self, shard: Shard) -> None:
        """Enqueue one shard on its tenant queue."""
        queue = self._queues.get(shard.queue)
        if queue is None:
            raise ConfigError(
                f"push to unregistered queue {shard.queue!r}"
            )
        if not queue.items:
            self._ring.append(shard.queue)
        queue.items.append(shard)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Shards waiting across all queues."""
        return sum(len(q.items) for q in self._queues.values())

    def quantum(self) -> float:
        """Visit credit unit: the largest active quantum hint (min 1)."""
        hints = [
            q.quantum_hint for q in self._queues.values() if q.items
        ]
        best = max(hints, default=0.0)
        return best if best > 0.0 else 1.0

    def next(self) -> Shard | None:
        """Dispatch the next shard under DRR, or ``None`` when idle.

        Starvation-free: a queue whose head shard exceeds its deficit
        rotates to the back with the deficit *kept*, and every revisit
        grants another ``quantum × weight`` — the head fits after at
        most ``ceil(cost / (quantum × weight))`` visits.
        """
        while self._ring:
            key = self._ring[0]
            queue = self._queues[key]
            if not queue.items:  # emptied by remove/drain bookkeeping
                self._ring.popleft()
                queue.deficit = 0.0
                queue.credited = False
                continue
            if not queue.credited:
                queue.deficit += self.quantum() * queue.weight
                queue.credited = True
            if queue.items[0].cost <= queue.deficit:
                shard = queue.items.popleft()
                queue.deficit -= shard.cost
                if not queue.items:
                    # Classic DRR: an emptied queue forfeits leftover
                    # deficit (no banking credit while idle).
                    self._ring.popleft()
                    queue.deficit = 0.0
                    queue.credited = False
                return shard
            self._ring.rotate(-1)
            queue.credited = False
        return None


class WorkerFleet:
    """The shared measurement fleet: a bounded thread pool.

    ``slots`` bounds both the pool size and the scheduler's in-flight
    shard count — every campaign in the service multiplexes over these
    threads, which is exactly what makes fair-share scheduling
    meaningful.  Measurement work is simulation-bound Python, so the
    fleet also serves as the service's concurrency throttle rather than
    a parallel speedup device.
    """

    def __init__(self, slots: int = 2) -> None:
        if slots < 1:
            raise ConfigError(f"fleet needs >= 1 slot, got {slots}")
        self.slots = slots
        self.executor = ThreadPoolExecutor(
            max_workers=slots, thread_name_prefix="repro-fleet"
        )

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight work."""
        self.executor.shutdown(wait=True)


class FairShareScheduler:
    """Asyncio dispatch loop over the DRR core and one worker fleet.

    Usage: ``register`` each campaign's queue, ``submit`` its shards
    (each returns a future resolved with the shard ``fn``'s return
    value), ``unregister`` on completion or cancellation.  ``start``
    launches the dispatch task; ``close`` drains it.
    """

    def __init__(self, fleet: WorkerFleet) -> None:
        self.fleet = fleet
        self._drr = DeficitRoundRobin()
        self._slots = asyncio.Semaphore(fleet.slots)
        self._wakeup = asyncio.Event()
        self._closed = False
        self._seq = 0
        self._task: asyncio.Task | None = None
        self._running: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the dispatch task on the running loop."""
        if self._task is None:
            self._task = asyncio.ensure_future(self._dispatch())

    def register(
        self, queue: str, weight: float = 1.0, quantum_hint: float = 0.0
    ) -> None:
        """Add (or re-weight) a tenant queue."""
        self._drr.add_queue(queue, weight=weight, quantum_hint=quantum_hint)

    def unregister(self, queue: str) -> int:
        """Drop a queue; cancels its pending shard futures."""
        dropped = self._drr.remove_queue(queue)
        for shard in dropped:
            if shard.future is not None and not shard.future.done():
                shard.future.cancel()
        return len(dropped)

    def submit(self, queue: str, cost: float, fn) -> "asyncio.Future":
        """Enqueue one shard; the future resolves with ``fn()``."""
        if self._closed:
            raise ConfigError("scheduler is closed")
        self._seq += 1
        shard = Shard(
            queue=queue,
            cost=cost,
            fn=fn,
            seq=self._seq,
            future=asyncio.get_event_loop().create_future(),
        )
        self._drr.push(shard)
        self._wakeup.set()
        return shard.future

    async def close(self) -> None:
        """Stop dispatching and wait for in-flight shards."""
        self._closed = True
        self._wakeup.set()
        if self._task is not None:
            await self._task
            self._task = None
        if self._running:
            await asyncio.gather(*self._running, return_exceptions=True)

    # ------------------------------------------------------------------
    async def _dispatch(self) -> None:
        while True:
            if self._drr.pending == 0:
                if self._closed:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            # Acquire the slot *before* selecting, so the DRR decision
            # reflects whatever is queued at the moment a worker frees
            # up — that is the fairness point of the whole design.
            await self._slots.acquire()
            shard = self._drr.next()
            if shard is None or (
                shard.future is not None and shard.future.cancelled()
            ):
                self._slots.release()
                continue
            task = asyncio.ensure_future(self._run(shard))
            self._running.add(task)
            task.add_done_callback(self._running.discard)

    async def _run(self, shard: Shard) -> None:
        loop = asyncio.get_event_loop()
        try:
            result = await loop.run_in_executor(
                self.fleet.executor, shard.fn
            )
        except Exception as exc:  # propagate through the shard future
            if shard.future is not None and not shard.future.cancelled():
                shard.future.set_exception(exc)
            else:  # pragma: no cover - cancelled mid-flight
                pass
        else:
            if shard.future is not None and not shard.future.cancelled():
                shard.future.set_result(result)
        finally:
            self._slots.release()
