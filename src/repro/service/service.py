"""The campaign service: submit / status / events / cancel on one loop.

:class:`CampaignService` is the long-lived front end over the batch
pipeline.  Each submitted :class:`~repro.service.requests.
CampaignRequest` becomes one campaign task on the event loop that walks
the engine's prepare → dispatch → finish seam
(:class:`~repro.exec.engine.PreparedCampaign`):

1. **Prepare** runs in an executor thread (calibration is real
   simulation work; the loop never blocks): emits ``CampaignStarted``,
   ``FacetPrepared`` (through the shared calibration cache when one is
   configured), ``PairSkipped``, and journal replays.
2. **Dispatch**: the remaining jobs are cut into facet-homogeneous
   shards, costed with the engine's probe cost model, and submitted to
   the :class:`~repro.service.scheduler.FairShareScheduler` — the
   deficit-round-robin core multiplexes every live campaign's shards
   over one shared :class:`~repro.service.scheduler.WorkerFleet`, so
   concurrent tenants progress in proportion to their weights.  Each
   shard measures through the engine's supervised in-process unit path
   (:func:`~repro.exec.supervise.run_units_inprocess` over
   :func:`~repro.exec.worker.run_pair_job`), so retries and quarantine
   behave exactly as engine dispatch.
3. **Finish** (executor thread again) sums virtual costs in grid-index
   order and assembles the :class:`~repro.core.results.CampaignResult`.

Because pair measurement is a pure function of ``(blueprint, config,
grid index)`` and the clock advance is index-ordered, *any*
interleaving of concurrent campaigns yields each campaign's exact
standalone result — CSV bytes and ``wall_virtual_s`` included.  That
bit-identity is the service's core invariant (pinned by
``tests/test_service.py``).

Durability: with a ``journal_root``, every campaign journals under
``<journal_root>/<campaign_id>/`` with its ``request.json`` beside it;
a finished campaign writes ``result.json``.  A service restarted over
the same root resumes every campaign that has a request but no result
— replaying journaled pairs and measuring only the rest, bit-identical
to the uninterrupted run (the journal fingerprint validates the
request → config mapping).
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.journal import CampaignJournal, JournalSink, campaign_fingerprint
from repro.core.results import ResultAccumulator
from repro.core.stream import (
    CampaignEvent,
    CampaignFinished,
    CampaignSink,
    PairMeasured,
    PairRetried,
    PairSkipped,
    StreamDispatcher,
)
from repro.errors import ServiceUnavailable
from repro.exec.engine import CampaignExecutor
from repro.exec.jobs import SupervisionPolicy
from repro.exec.supervise import run_units_inprocess
from repro.exec.worker import fire_worker_faults, run_pair_job
from repro.service.bridge import EventBroadcast, QueueBridgeSink
from repro.service.requests import CampaignRequest
from repro.service.scheduler import FairShareScheduler, WorkerFleet

__all__ = ["CampaignService", "CampaignStatus"]


@dataclass
class CampaignStatus:
    """One campaign's externally visible state snapshot."""

    campaign_id: str
    tenant: str
    #: ``queued`` → ``preparing`` → ``running`` → ``finishing`` →
    #: ``finished`` | ``cancelled`` | ``failed``
    state: str
    total_pairs: int = 0
    measured: int = 0
    skipped: int = 0
    replayed: int = 0
    retried: int = 0
    #: whether journaled pairs were replayed (restart recovery)
    resumed: bool = False
    #: set on ``finished``
    wall_virtual_s: float | None = None
    #: set on ``failed``
    error: str | None = None

    def to_wire(self) -> dict:
        """JSON-ready dict (the socket protocol's status payload)."""
        return {
            "campaign_id": self.campaign_id,
            "tenant": self.tenant,
            "state": self.state,
            "total_pairs": self.total_pairs,
            "measured": self.measured,
            "skipped": self.skipped,
            "replayed": self.replayed,
            "retried": self.retried,
            "resumed": self.resumed,
            "wall_virtual_s": self.wall_virtual_s,
            "error": self.error,
        }


class _CounterSink(CampaignSink):
    """Per-campaign progress counters, fed straight off the stream."""

    def __init__(self, record: "_Campaign") -> None:
        self.record = record

    def on_event(self, event: CampaignEvent) -> None:
        record = self.record
        if isinstance(event, PairMeasured):
            record.measured += 1
            if event.replayed:
                record.replayed += 1
        elif isinstance(event, PairSkipped):
            record.skipped += 1
        elif isinstance(event, PairRetried):
            record.retried += 1
        elif isinstance(event, CampaignFinished):
            record.wall_virtual_s = event.wall_virtual_s


@dataclass
class _Campaign:
    """Internal per-campaign record."""

    campaign_id: str
    request: CampaignRequest
    broadcast: EventBroadcast
    state: str = "queued"
    resumed: bool = False
    total_pairs: int = 0
    measured: int = 0
    skipped: int = 0
    replayed: int = 0
    retried: int = 0
    wall_virtual_s: float | None = None
    error: str | None = None
    result: object = None
    task: "asyncio.Task | None" = None
    cancel_requested: bool = False
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def status(self) -> CampaignStatus:
        return CampaignStatus(
            campaign_id=self.campaign_id,
            tenant=self.request.tenant,
            state=self.state,
            total_pairs=self.total_pairs,
            measured=self.measured,
            skipped=self.skipped,
            replayed=self.replayed,
            retried=self.retried,
            resumed=self.resumed,
            wall_virtual_s=self.wall_virtual_s,
            error=self.error,
        )


def _atomic_json(path: Path, payload: dict) -> None:
    """Write-then-rename so a crash never leaves a truncated marker."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


class CampaignService:
    """Multi-tenant campaign execution on one asyncio event loop.

    Parameters
    ----------
    fleet_size:
        Worker-fleet slots shared by every campaign (the fair-share
        multiplexing width).
    journal_root:
        Directory holding one journal per campaign.  Enables durable
        progress and :meth:`start`-time crash recovery; ``None`` runs
        campaigns in memory only.
    calibration_cache:
        One calibration cache directory shared across all tenants
        (each request may still override it in its own config).
    shard_pairs:
        Pair jobs per scheduler shard — the fair-share preemption
        granularity.  Smaller shards interleave tenants more finely at
        slightly more scheduling overhead; results are identical either
        way.
    """

    def __init__(
        self,
        fleet_size: int = 2,
        journal_root: "str | Path | None" = None,
        calibration_cache: "str | None" = None,
        shard_pairs: int = 4,
    ) -> None:
        self.fleet = WorkerFleet(fleet_size)
        self.scheduler = FairShareScheduler(self.fleet)
        self.journal_root = (
            None if journal_root is None else Path(journal_root)
        )
        self.calibration_cache = calibration_cache
        self.shard_pairs = max(1, int(shard_pairs))
        self._campaigns: dict[str, _Campaign] = {}
        self._tenant_active: dict[str, int] = {}
        self._draining = False
        self._stopped = False
        self._next_id = 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> list[str]:
        """Start dispatch and resume any journaled in-flight campaigns.

        Returns the ids of resumed campaigns.  A campaign directory is
        in-flight when it holds a ``request.json`` but no
        ``result.json`` — i.e. the previous service died (or was
        killed) before ``finish``; its journaled pairs replay and only
        the remainder is measured.
        """
        self.scheduler.start()
        resumed: list[str] = []
        if self.journal_root is not None and self.journal_root.is_dir():
            for entry in sorted(self.journal_root.iterdir()):
                request_file = entry / "request.json"
                if not request_file.is_file():
                    continue
                if (entry / "result.json").is_file():
                    continue
                request = CampaignRequest.from_json(
                    request_file.read_text()
                )
                campaign = self._admit(
                    request,
                    campaign_id=entry.name,
                    resume=(entry / "meta.json").is_file(),
                )
                resumed.append(campaign.campaign_id)
        return resumed

    async def drain(self) -> None:
        """Stop accepting submissions and wait for live campaigns."""
        self._draining = True
        await asyncio.gather(
            *(c.done.wait() for c in self._campaigns.values())
        )

    async def stop(self, drain: bool = True) -> None:
        """Shut down: optionally drain, else cancel, then stop workers."""
        self._draining = True
        if not drain:
            for campaign in list(self._campaigns.values()):
                if not campaign.done.is_set():
                    await self.cancel(campaign.campaign_id)
        await self.drain()
        await self.scheduler.close()
        self.fleet.close()
        self._stopped = True

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    async def submit(self, request: CampaignRequest) -> str:
        """Accept one campaign; returns its id immediately."""
        if self._draining or self._stopped:
            raise ServiceUnavailable(
                "service is draining; new campaigns are not accepted"
            )
        campaign = self._admit(request)
        return campaign.campaign_id

    def status(self, campaign_id: "str | None" = None):
        """One campaign's status, or every campaign's (id order)."""
        if campaign_id is not None:
            return self._get(campaign_id).status()
        return [
            self._campaigns[cid].status()
            for cid in sorted(self._campaigns)
        ]

    def events(self, campaign_id: str):
        """Async iterator over the campaign's stream (history included)."""
        return self._get(campaign_id).broadcast.aiter()

    async def result(self, campaign_id: str):
        """Wait for the campaign and return its ``CampaignResult``.

        Raises the campaign's failure, or :class:`ServiceUnavailable`
        for a cancelled campaign (there is no result to return).
        """
        campaign = self._get(campaign_id)
        await campaign.done.wait()
        if campaign.state == "finished":
            return campaign.result
        if campaign.state == "failed":
            raise ServiceUnavailable(
                f"campaign {campaign_id} failed: {campaign.error}"
            )
        raise ServiceUnavailable(f"campaign {campaign_id} was cancelled")

    async def cancel(self, campaign_id: str) -> bool:
        """Request cancellation; waits for the campaign to wind down.

        Returns ``True`` if the campaign was cancelled, ``False`` if it
        had already reached a terminal state.  Cancellation is
        cooperative at shard granularity: in-flight shards finish on
        their worker threads (their results are discarded), pending
        shards never run, and the journal keeps everything measured so
        far — a journaled cancelled campaign resumes on restart.
        """
        campaign = self._get(campaign_id)
        if campaign.done.is_set():
            return False
        campaign.cancel_requested = True
        await campaign.done.wait()
        return campaign.state == "cancelled"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _get(self, campaign_id: str) -> _Campaign:
        campaign = self._campaigns.get(campaign_id)
        if campaign is None:
            raise ServiceUnavailable(f"unknown campaign {campaign_id!r}")
        return campaign

    def _new_id(self) -> str:
        while True:
            campaign_id = f"c{self._next_id:04d}"
            self._next_id += 1
            if campaign_id not in self._campaigns and not (
                self.journal_root is not None
                and (self.journal_root / campaign_id).exists()
            ):
                return campaign_id

    def _admit(
        self,
        request: CampaignRequest,
        campaign_id: "str | None" = None,
        resume: bool = False,
    ) -> _Campaign:
        if campaign_id is None:
            campaign_id = self._new_id()
        campaign = _Campaign(
            campaign_id=campaign_id,
            request=request,
            broadcast=EventBroadcast(asyncio.get_event_loop()),
        )
        self._campaigns[campaign_id] = campaign
        self._tenant_active[request.tenant] = (
            self._tenant_active.get(request.tenant, 0) + 1
        )
        self.scheduler.register(request.tenant, weight=request.weight)
        if self.journal_root is not None:
            directory = self.journal_root / campaign_id
            directory.mkdir(parents=True, exist_ok=True)
            _atomic_json(
                directory / "request.json",
                json.loads(request.to_json()),
            )
        campaign.task = asyncio.ensure_future(
            self._run_campaign(campaign, resume=resume)
        )
        return campaign

    def _build_shards(self, executor: CampaignExecutor, prep):
        """Facet-homogeneous job chunks + their cost-model costs."""
        cost_of = executor.job_cost(prep.payload)
        shards: list[list] = []
        run: list = []
        for job in prep.todo:
            if run and (
                job.facet != run[-1].facet
                or len(run) >= self.shard_pairs
            ):
                shards.append(run)
                run = []
            run.append(job)
        if run:
            shards.append(run)
        costs = [sum(cost_of(job) for job in shard) for shard in shards]
        return shards, costs

    async def _run_campaign(self, campaign: _Campaign, resume: bool) -> None:
        loop = asyncio.get_event_loop()
        request = campaign.request
        journal: CampaignJournal | None = None
        interrupted = False
        try:
            campaign.state = "preparing"
            campaign.resumed = resume

            def prepare_stage():
                """Machine build + journal open + engine prepare (thread)."""
                machine = request.build_machine()
                config = request.build_config(
                    calibration_cache=self.calibration_cache
                )
                executor = CampaignExecutor(machine, config, workers=1)
                opened = None
                loaded: dict = {}
                if self.journal_root is not None:
                    from repro.core.journal import campaign_synopsis

                    opened = CampaignJournal.open(
                        self.journal_root / campaign.campaign_id,
                        campaign_fingerprint(config, machine.blueprint),
                        mode="engine",
                        resume=resume,
                        synopsis=campaign_synopsis(
                            config, machine.blueprint
                        ),
                    )
                    if resume:
                        loaded = opened.load()
                accumulator = ResultAccumulator()
                dispatch = StreamDispatcher(
                    accumulator,
                    JournalSink(opened) if opened is not None else None,
                    _CounterSink(campaign),
                    QueueBridgeSink(campaign.broadcast),
                )
                prep = executor.prepare(dispatch, loaded)
                return executor, opened, accumulator, dispatch, prep

            (
                executor,
                journal,
                accumulator,
                dispatch,
                prep,
            ) = await loop.run_in_executor(
                self.fleet.executor, prepare_stage
            )
            campaign.total_pairs = len(prep.jobs) + len(prep.skips)

            campaign.state = "running"
            policy = SupervisionPolicy.from_config(executor.config)
            payload = prep.payload
            #: per-campaign replica-skeleton cache, shared by this
            #: campaign's shards only (values are deterministic per key,
            #: so concurrent shard threads at worst duplicate work)
            skeleton: dict = {}

            def shard_fn(shard_jobs):
                def fn():
                    retries: list = []

                    def on_retry(unit_jobs, attempts, cause):
                        retries.append(
                            (
                                tuple(j.index for j in unit_jobs),
                                attempts,
                                cause,
                            )
                        )

                    def measure(unit_jobs):
                        fire_worker_faults(
                            unit_jobs, payload, in_process=True
                        )
                        return [
                            run_pair_job(job, payload, skeleton)
                            for job in unit_jobs
                        ]

                    results = run_units_inprocess(
                        [shard_jobs],
                        policy,
                        None,
                        lambda _results: None,
                        measure,
                        on_retry=on_retry,
                    )
                    return results, retries

                return fn

            shards, costs = self._build_shards(executor, prep)
            if shards:
                hint = sum(costs) / len(costs)
                self.scheduler.register(
                    request.tenant,
                    weight=request.weight,
                    quantum_hint=hint,
                )
            pending = {
                self.scheduler.submit(
                    request.tenant, cost, shard_fn(shard)
                )
                for shard, cost in zip(shards, costs)
            }
            while pending:
                if campaign.cancel_requested:
                    interrupted = True
                    break
                finished, pending = await asyncio.wait(
                    pending,
                    timeout=0.05,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for future in finished:
                    results, retries = future.result()
                    for indices, attempt, cause in retries:
                        dispatch.emit(
                            PairRetried(
                                indices=indices,
                                attempt=attempt,
                                cause=cause,
                            )
                        )
                    for res in results:
                        prep.elapsed_by_index[res.index] = (
                            res.elapsed_virtual_s
                        )
                        dispatch.emit(
                            PairMeasured(
                                index=res.index,
                                pair=res.pair,
                                elapsed_virtual_s=res.elapsed_virtual_s,
                            )
                        )
            if campaign.cancel_requested:
                # Covers a cancel that landed during prepare (or between
                # the last shard and finish) as well as mid-dispatch.
                interrupted = True
            if interrupted:
                # Cooperative cancel: pending shards never run; shards
                # already on a worker thread finish there but their
                # results are dropped (the journal only holds pairs
                # whose events were emitted — resume re-measures the
                # rest bit-identically).
                for future in pending:
                    future.cancel()
                dispatch.interrupt()
                campaign.state = "cancelled"
                return

            campaign.state = "finishing"
            campaign.result = await loop.run_in_executor(
                self.fleet.executor,
                lambda: executor.finish(prep, dispatch, accumulator),
            )
            if self.journal_root is not None:
                _atomic_json(
                    self.journal_root / campaign.campaign_id / "result.json",
                    {
                        "campaign_id": campaign.campaign_id,
                        "tenant": request.tenant,
                        "wall_virtual_s": campaign.result.wall_virtual_s,
                        "n_pairs": len(campaign.result.pairs),
                    },
                )
            campaign.state = "finished"
        except Exception as exc:
            campaign.state = "failed"
            campaign.error = f"{type(exc).__name__}: {exc}"
            interrupted = True
        finally:
            if journal is not None:
                journal.close()
            campaign.broadcast.close(interrupted=interrupted)
            remaining = self._tenant_active.get(request.tenant, 1) - 1
            if remaining <= 0:
                self._tenant_active.pop(request.tenant, None)
                self.scheduler.unregister(request.tenant)
            else:
                self._tenant_active[request.tenant] = remaining
            campaign.done.set()
