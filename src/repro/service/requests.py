"""Campaign requests: the service's JSON-serializable unit of work.

A :class:`CampaignRequest` carries everything needed to rebuild a
campaign from scratch — the machine recipe (GPU model, seed, hostname,
GPU count) and the :class:`~repro.core.config.LatestConfig` keyword
overrides — plus the service-level tenancy fields (tenant name,
fair-share weight).  Because the request round-trips through JSON
losslessly (:meth:`CampaignRequest.to_json` /
:meth:`CampaignRequest.from_json`), the service persists each request
next to its journal (``request.json``) and can resume an in-flight
campaign after a crash from nothing but the journal directory.

Determinism note: JSON has no tuple type, so sequence-valued config
fields arrive back as lists.  :meth:`build_config` normalizes every
sequence to a tuple before constructing the config — the campaign
fingerprint pickles the config, so a list-valued field would silently
change the fingerprint and break resume validation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields

from repro.core.config import LatestConfig
from repro.errors import ConfigError
from repro.machine import Machine, make_machine

__all__ = ["CampaignRequest"]

#: config fields that carry non-JSON payloads and therefore cannot be
#: set through a service request
_UNSERIALIZABLE = {"outlier_config", "ptp_link"}

_CONFIG_FIELDS = {f.name for f in fields(LatestConfig)}


def _normalize(value):
    """Lists (JSON's only sequence) become tuples, recursively."""
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(v) for v in value)
    return value


@dataclass(frozen=True)
class CampaignRequest:
    """One tenant's campaign: machine recipe + config overrides.

    ``config`` holds :class:`~repro.core.config.LatestConfig` keyword
    overrides exactly as a caller would pass them to the constructor;
    unknown keys and non-JSON-serializable fields
    (``outlier_config``, ``ptp_link``) are rejected at construction so a
    bad request fails at submit time, not mid-campaign.
    """

    #: fair-share queue the campaign bills against
    tenant: str = "default"
    #: relative fair share of the worker fleet (must be > 0)
    weight: float = 1.0
    gpu_model: str = "A100"
    n_gpus: int = 1
    seed: int = 0
    hostname: str = "simnode01"
    #: ``LatestConfig`` keyword overrides (JSON-serializable values only)
    config: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ConfigError("request tenant must be a non-empty string")
        if not self.weight > 0:
            raise ConfigError(
                f"request weight must be > 0, got {self.weight}"
            )
        unknown = set(self.config) - _CONFIG_FIELDS
        if unknown:
            raise ConfigError(
                f"unknown config fields in request: {sorted(unknown)}"
            )
        banned = set(self.config) & _UNSERIALIZABLE
        if banned:
            raise ConfigError(
                f"config fields {sorted(banned)} are not JSON-serializable "
                "and cannot be set through a service request"
            )

    # ------------------------------------------------------------------
    def build_machine(self) -> Machine:
        """Fresh machine from the recipe (same build as the CLI path)."""
        return make_machine(
            gpu_model=self.gpu_model,
            n_gpus=self.n_gpus,
            seed=self.seed,
            hostname=self.hostname,
        )

    def build_config(self, **overrides) -> LatestConfig:
        """The campaign config, sequences normalized to tuples.

        ``overrides`` are service-side settings (the shared
        ``calibration_cache``, usually) layered on top of the request's
        own config — the request wins on conflict so a tenant can
        explicitly opt out of the shared cache.
        """
        kwargs = dict(overrides)
        kwargs.update(self.config)
        return LatestConfig(
            **{key: _normalize(value) for key, value in kwargs.items()}
        )

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize; ``from_json`` restores an equivalent request."""
        return json.dumps(
            {
                "tenant": self.tenant,
                "weight": self.weight,
                "gpu_model": self.gpu_model,
                "n_gpus": self.n_gpus,
                "seed": self.seed,
                "hostname": self.hostname,
                "config": self.config,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignRequest":
        """Rebuild a request persisted by :meth:`to_json`."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigError("campaign request JSON must be an object")
        known = {
            "tenant", "weight", "gpu_model", "n_gpus", "seed",
            "hostname", "config",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown campaign request fields: {sorted(unknown)}"
            )
        return cls(**data)
