"""Campaign-as-a-service: the asyncio front end over the execution engine.

This package turns the batch campaign pipeline into a long-lived
multi-tenant service (ROADMAP item 1).  The layering, bottom to top:

:mod:`repro.service.requests`
    :class:`CampaignRequest` — a JSON-serializable campaign description
    (tenant, fair-share weight, machine recipe, config kwargs) that
    round-trips losslessly so in-flight requests survive a service
    restart.
:mod:`repro.service.scheduler`
    :class:`DeficitRoundRobin` — the pure, synchronous fair-share core —
    wrapped by :class:`FairShareScheduler`, the asyncio dispatch loop
    that multiplexes shard execution over one shared
    :class:`WorkerFleet` of executor threads.
:mod:`repro.service.bridge`
    :class:`EventBroadcast` + :class:`QueueBridgeSink` — the
    thread-safe bridge that republishes each campaign's typed
    :mod:`repro.core.stream` events onto per-subscriber
    :class:`asyncio.Queue`\\ s (history replayed to late subscribers).
:mod:`repro.service.service`
    :class:`CampaignService` — submit / status / events / cancel /
    drain, journal-backed crash recovery, one shared calibration
    cache across tenants.
:mod:`repro.service.server` / :mod:`repro.service.client`
    A JSON-lines unix-socket server and the matching thin client
    (:class:`ServiceClient` in-process, :class:`SocketClient` over the
    socket).
:mod:`repro.service.cli`
    The ``repro`` console entry point (``serve`` / ``submit`` /
    ``status`` / ``events`` / ``cancel``).

Execution stays on the engine's prepare → dispatch → finish seam
(:class:`repro.exec.engine.PreparedCampaign`): the service only decides
*when* each facet-chunked shard runs, never *how* a pair is measured —
which is why any interleaving of concurrent campaigns reproduces each
campaign's standalone result bit for bit.
"""

from repro.service.requests import CampaignRequest
from repro.service.scheduler import (
    DeficitRoundRobin,
    FairShareScheduler,
    Shard,
    WorkerFleet,
)
from repro.service.bridge import EventBroadcast, QueueBridgeSink
from repro.service.service import CampaignService, CampaignStatus

__all__ = [
    "CampaignRequest",
    "CampaignService",
    "CampaignStatus",
    "DeficitRoundRobin",
    "EventBroadcast",
    "FairShareScheduler",
    "QueueBridgeSink",
    "Shard",
    "WorkerFleet",
]
