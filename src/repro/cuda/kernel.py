"""The artificial iterative microbenchmark kernel.

Paper Sec. V: "a microbenchmark kernel consists of the same arithmetic
instruction repeated multiple times in each performed iteration", with
timestamp reads as the first and last instruction of every iteration, on
every SM.  The kernel keeps the device busy (so clocks hold their locked
frequency) while making per-iteration runtime a direct probe of the SM
clock.

``cycles_per_iteration`` controls the measurement granularity trade-off the
paper discusses: iterations must be as short as possible (they set the
resolution of the switching-latency estimate) yet long enough for runtime
differences between neighbouring frequencies to exceed timer quantization
and execution noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpusim.device import KernelLaunchSpec
from repro.gpusim.spec import GpuSpec

__all__ = ["MicrobenchmarkKernel"]


@dataclass(frozen=True)
class MicrobenchmarkKernel:
    """Launch-ready description of the artificial workload.

    Parameters
    ----------
    n_iterations:
        Timed iterations per SM.
    cycles_per_iteration:
        Mean SM cycles consumed by one iteration (the repeated arithmetic
        instruction block).
    sm_count:
        SMs to occupy/record; ``None`` = all SMs on the device.
    """

    n_iterations: int
    cycles_per_iteration: float
    sm_count: int | None = None
    label: str = "microbench"
    #: untimed workloads (fillers, warm-up load) whose per-iteration
    #: timestamps are never read; simulated at aggregate fidelity
    aggregate: bool = False
    #: memory-bound fraction of the iteration cycle budget; makes iteration
    #: time respond to the memory clock in core×memory campaigns (inert at
    #: the reference memory clock)
    memory_intensity: float = 0.30

    def __post_init__(self) -> None:
        if self.n_iterations <= 0:
            raise ConfigError("n_iterations must be positive")
        if self.cycles_per_iteration < 1000:
            raise ConfigError(
                "cycles_per_iteration below 1000 cycles cannot exceed timer "
                "granularity on any supported device"
            )
        if not 0.0 <= self.memory_intensity < 1.0:
            raise ConfigError("memory_intensity must be in [0, 1)")

    def launch_spec(self) -> KernelLaunchSpec:
        return KernelLaunchSpec(
            n_iterations=self.n_iterations,
            cycles_per_iteration=self.cycles_per_iteration,
            sm_count=self.sm_count,
            label=self.label,
            aggregate=self.aggregate,
            memory_intensity=self.memory_intensity,
        )

    def iteration_duration_s(self, freq_mhz: float) -> float:
        """Expected duration of one iteration at ``freq_mhz``."""
        return self.cycles_per_iteration / (freq_mhz * 1e6)

    def duration_s(self, freq_mhz: float) -> float:
        """Expected kernel duration at a constant ``freq_mhz``."""
        return self.n_iterations * self.iteration_duration_s(freq_mhz)

    @classmethod
    def sized_for(
        cls,
        spec: GpuSpec,
        iteration_duration_s: float = 60e-6,
        total_duration_s: float = 0.25,
        sm_count: int | None = None,
        label: str = "microbench",
        memory_intensity: float = 0.30,
    ) -> "MicrobenchmarkKernel":
        """Build a kernel with a given per-iteration duration at max clock.

        ``iteration_duration_s`` is evaluated at the device's maximum SM
        frequency, so iterations only get longer at lower clocks.
        """
        cycles = iteration_duration_s * spec.max_sm_frequency_mhz * 1e6
        n_iter = max(1, int(round(total_duration_s / iteration_duration_s)))
        return cls(
            n_iterations=n_iter,
            cycles_per_iteration=cycles,
            sm_count=sm_count,
            label=label,
            memory_intensity=memory_intensity,
        )

    def scaled(self, iteration_factor: float = 1.0, length_factor: float = 1.0):
        """A derived kernel with scaled iteration size and/or count.

        Implements the paper's fallback rules: grow the per-iteration
        workload when frequency pairs are statistically indistinguishable,
        or grow the iteration count tenfold when a switching latency was not
        captured within the benchmark window.
        """
        return MicrobenchmarkKernel(
            n_iterations=max(1, int(round(self.n_iterations * length_factor))),
            cycles_per_iteration=self.cycles_per_iteration * iteration_factor,
            sm_count=self.sm_count,
            label=self.label,
            memory_intensity=self.memory_intensity,
        )
