"""CUDA-runtime-like context: launches, synchronization, timestamp readback.

Host-side costs are modelled because they are physically real parts of the
measured pipeline: a kernel launch burns ~8 us of CPU time before the
command reaches the device queue, and a synchronize costs a driver round
trip after the device drains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.kernel import MicrobenchmarkKernel
from repro.errors import CudaError
from repro.gpusim.device import GpuDevice, KernelHandle
from repro.gpusim.sm import DeviceTimestamps
from repro.simtime.host import HostCpu

__all__ = ["CudaContext", "LaunchedKernel"]

_LAUNCH_CPU_COST_S = 8e-6
_SYNC_CPU_COST_S = 4e-6


@dataclass
class LaunchedKernel:
    """Host-side handle for an in-flight or completed kernel."""

    kernel: MicrobenchmarkKernel
    handle: KernelHandle

    @property
    def finalized(self) -> bool:
        return self.handle.finalized


class CudaContext:
    """A host thread's view of one GPU."""

    def __init__(self, host: HostCpu, device: GpuDevice) -> None:
        self.host = host
        self.device = device

    # ------------------------------------------------------------------
    def launch(self, kernel: MicrobenchmarkKernel) -> LaunchedKernel:
        """Asynchronously launch the microbenchmark kernel."""
        self.host.busy(_LAUNCH_CPU_COST_S)
        handle = self.device.launch_kernel(kernel.launch_spec())
        return LaunchedKernel(kernel=kernel, handle=handle)

    def synchronize(self) -> float:
        """Block until the device drains; returns host true time after."""
        t = self.device.synchronize()
        self.host.busy(_SYNC_CPU_COST_S)
        return t

    def run(self, kernel: MicrobenchmarkKernel) -> DeviceTimestamps:
        """Launch, synchronize, and read back timestamps in one call."""
        launched = self.launch(kernel)
        self.synchronize()
        return self.timestamps(launched)

    def timestamps(self, launched: LaunchedKernel) -> DeviceTimestamps:
        """Read the per-iteration timestamp buffers (requires prior sync)."""
        if not launched.finalized:
            raise CudaError("timestamps read before synchronize()")
        return self.device.read_timestamps(launched.handle)

    # ------------------------------------------------------------------
    def global_timer(self) -> float:
        """Read the device ``%globaltimer`` from a probe kernel.

        Used by the timer-synchronization handshake; costs one driver round
        trip on the host plus the device-side read.
        """
        self.host.busy(2e-6)
        return self.device.gpu_clock.read()

    @property
    def sm_count(self) -> int:
        return self.device.spec.sm_count
