"""CUDA-like runtime layer over the simulated GPU.

Mirrors the subset of the CUDA driver/runtime surface the LATEST tool uses:
kernel launches of the iterative arithmetic microbenchmark, device
synchronization, and reading back per-iteration ``%globaltimer`` timestamp
buffers.
"""

from repro.cuda.kernel import MicrobenchmarkKernel
from repro.cuda.runtime import CudaContext, LaunchedKernel

__all__ = ["CudaContext", "LaunchedKernel", "MicrobenchmarkKernel"]
