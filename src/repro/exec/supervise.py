"""Supervised dispatch rounds shared by every pool execution tier.

The machinery that makes campaign dispatch fault-tolerant lives here,
decoupled from both the measurement entry points and any particular
transport: per-unit bookkeeping (:class:`UnitState`), retry/backoff/
quarantine decisions against a :class:`~repro.exec.jobs.SupervisionPolicy`,
deadline enforcement, and the two generic dispatch loops —
:func:`run_units_inprocess` (shares the driver process) and
:func:`run_units_pool` (per-round ``ProcessPoolExecutor``).  The warm-pool
tier (:mod:`repro.exec.daemon`) implements its own transport loop but
reuses the same :class:`UnitState`/:func:`quarantine_results` semantics,
so all three tiers converge on identical retry and quarantine behavior.

The loops are transport-generic by injection: the caller
(:class:`~repro.exec.engine.CampaignExecutor`) passes the measurement
callables (``measure`` in-process; ``fn``/``initializer`` for pool
workers, both from :mod:`repro.exec.worker`), so this module never
imports the engine or the worker entry points.

Supervision is observable through the campaign event stream: the
``on_retry`` hook (wired to :class:`~repro.core.stream.PairRetried` by
the executor) fires whenever a failed unit is about to be re-dispatched —
never for quarantine (terminal, reported through ``on_result`` as skip
reasons) and never for innocent requeues (no failure occurred).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace as dc_replace

from repro.core.results import PairResult
from repro.exec.jobs import PairJob, PairJobResult, SupervisionPolicy

__all__ = [
    "UnitState",
    "kill_pool_processes",
    "mp_context",
    "quarantine_results",
    "run_units_inprocess",
    "run_units_pool",
]


def mp_context():
    """The multiprocessing context every repro process pool should use.

    ``fork`` where available (Linux — workers inherit loaded modules),
    ``spawn`` elsewhere.  Public so sweeps and external drivers share one
    start-method policy instead of reaching into engine internals.
    """
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(method)


class UnitState:
    """Supervision bookkeeping for one dispatch unit (a job list)."""

    __slots__ = ("jobs", "attempts", "cost", "deadline", "task_ids")

    def __init__(self, jobs: list[PairJob], cost: float = 0.0) -> None:
        self.jobs = jobs
        self.attempts = 0
        self.cost = cost
        #: wall-clock deadline of the current dispatch (None = no timeout)
        self.deadline: float | None = None
        #: warm-pool task ids currently mapped to this unit
        self.task_ids: set[int] = set()

    def jobs_for_attempt(self) -> list[PairJob]:
        if self.attempts == 0:
            return self.jobs
        return [dc_replace(job, attempt=self.attempts) for job in self.jobs]


def quarantine_results(
    jobs: list[PairJob], attempts: int, cause: str
) -> list[PairJobResult]:
    """Skip results for a unit that exhausted its retry budget.

    A persistently failing grid point becomes a recorded skip reason —
    the same machinery phase 1 uses for unreachable pairs — instead of
    aborting the whole campaign.  Zero virtual cost: the pair never
    measured, so the campaign clock must not advance for it.
    """
    lines = str(cause).strip().splitlines()
    summary = (lines[-1] if lines else str(cause))[:200]
    reason = f"quarantined after {attempts} failed attempts: {summary}"
    out: list[PairJobResult] = []
    for job in jobs:
        pair = PairResult(
            init_mhz=float(job.init_mhz),
            target_mhz=float(job.target_mhz),
            skipped=True,
            skip_reason=reason,
            memory_mhz=job.memory_mhz,
            locked_sm_mhz=job.locked_sm_mhz,
            axis=job.axis,
        )
        pair.n_retries = attempts
        out.append(
            PairJobResult(index=job.index, pair=pair, elapsed_virtual_s=0.0)
        )
    return out


def kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool whose workers cannot be trusted to exit (hangs)."""
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in procs:
        proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=1.0)


def run_units_inprocess(
    units,
    policy: SupervisionPolicy,
    guard,
    on_result,
    measure,
    on_retry=None,
) -> list[PairJobResult]:
    """Supervised in-process execution (``workers == 1``).

    ``measure(jobs)`` is the caller's measurement callable (fault hooks
    included).  Shares the driver process, so supervision covers
    exceptions only: injected kills are downgraded to exceptions and
    per-unit deadlines cannot preempt (there is no worker to kill).
    Retries and quarantine behave exactly like the pool path.
    """
    collected: list[PairJobResult] = []
    for unit in units:
        if guard is not None and guard.requested:
            break
        attempts = 0
        while True:
            jobs = (
                unit
                if attempts == 0
                else [dc_replace(job, attempt=attempts) for job in unit]
            )
            try:
                results = measure(jobs)
            except Exception as exc:
                attempts += 1
                cause = f"worker-error: {type(exc).__name__}: {exc}"
                if attempts > policy.max_retries:
                    results = quarantine_results(unit, attempts, cause)
                    break
                if on_retry is not None:
                    on_retry(unit, attempts, cause)
                time.sleep(policy.backoff_for(attempts))
                continue
            break
        for res in results:
            res.pair.n_retries = attempts
        collected.extend(results)
        on_result(results)
    return collected


def run_units_pool(
    units,
    costs,
    policy: SupervisionPolicy,
    guard,
    on_result,
    *,
    workers: int,
    fn,
    initializer,
    initargs,
    on_retry=None,
) -> list[PairJobResult]:
    """Supervised dispatch over per-round ``ProcessPoolExecutor``s.

    ``fn`` is the worker unit entry point and ``initializer(*initargs)``
    installs per-process shared state (the campaign payload).  Each round
    submits every outstanding unit with a wall-clock deadline derived
    from its expected cost.  A crashed pool (``BrokenProcessPool``) or an
    expired deadline tears the round's pool down and re-dispatches the
    survivors on a fresh one; units that keep failing past
    ``policy.max_retries`` are quarantined.  A shutdown signal stops
    submissions, drains running units, and returns what completed.
    """
    collected: list[PairJobResult] = []

    def complete(state: UnitState, results) -> None:
        for res in results:
            res.pair.n_retries = state.attempts
        collected.extend(results)
        on_result(results)

    def note_failure(state: UnitState, cause: str, retry) -> None:
        state.attempts += 1
        if state.attempts > policy.max_retries:
            complete(
                state,
                quarantine_results(state.jobs, state.attempts, cause),
            )
        else:
            if on_retry is not None:
                on_retry(state.jobs, state.attempts, cause)
            retry.append(state)

    todo = [UnitState(unit, cost) for unit, cost in zip(units, costs)]
    while todo and not (guard is not None and guard.requested):
        backoff = max(
            (policy.backoff_for(state.attempts) for state in todo),
            default=0.0,
        )
        if backoff > 0.0:
            time.sleep(backoff)
        retry: list[UnitState] = []
        requeue: list[UnitState] = []
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(todo)),
            mp_context=mp_context(),
            initializer=initializer,
            initargs=initargs,
        )
        killed = False
        try:
            future_of = {}
            for state in todo:
                future = pool.submit(fn, state.jobs_for_attempt())
                timeout = policy.timeout_for(state.cost)
                state.deadline = (
                    None
                    if timeout is None
                    else time.monotonic() + timeout
                )
                future_of[future] = state
            remaining = set(future_of)
            while remaining:
                done, _ = wait(
                    remaining,
                    timeout=policy.poll_s,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    remaining.discard(future)
                    state = future_of[future]
                    try:
                        complete(state, future.result())
                    except BrokenProcessPool:
                        broken = True
                        note_failure(state, "worker-crash", retry)
                    except Exception as exc:
                        note_failure(
                            state,
                            f"worker-error: {type(exc).__name__}: {exc}",
                            retry,
                        )
                if broken:
                    # The pool is dead and the executor cannot say
                    # which unit killed it: every in-flight unit takes
                    # an attempt bump (bounded collateral — see
                    # DESIGN.md) and a seat on the rebuilt pool.
                    for future in remaining:
                        state = future_of[future]
                        try:
                            complete(state, future.result(timeout=0))
                        except Exception:
                            note_failure(state, "worker-crash", retry)
                    remaining.clear()
                    break
                now = time.monotonic()
                expired = {
                    future
                    for future in remaining
                    if future_of[future].deadline is not None
                    and now > future_of[future].deadline
                }
                if expired:
                    # A unit blew its deadline (hung worker).  The
                    # pool cannot cancel a running call, so kill the
                    # whole pool; innocent bystanders requeue at their
                    # current attempt count.
                    for future in list(remaining):
                        state = future_of[future]
                        if future.done():
                            remaining.discard(future)
                            try:
                                complete(state, future.result())
                            except Exception:
                                note_failure(
                                    state, "worker-crash", retry
                                )
                            continue
                        if future in expired:
                            note_failure(state, "job-timeout", retry)
                        else:
                            requeue.append(state)
                    remaining.clear()
                    kill_pool_processes(pool)
                    killed = True
                    break
                if guard is not None and guard.requested:
                    # Graceful drain: cancel what never started, let
                    # running units finish and collect them.
                    for future in list(remaining):
                        if future.cancel():
                            remaining.discard(future)
        finally:
            if not killed:
                pool.shutdown(wait=True, cancel_futures=True)
        todo = retry + requeue
    return collected
