"""Persistent warm worker daemons that outlive a single campaign.

The per-campaign ``ProcessPoolExecutor`` pays its full setup bill every
run: fork, payload pickle/unpickle into every worker, and — costlier —
a cold skeleton cache, so each campaign re-derives the deterministic
latency-model structures its replicas need.  Sweeps and benchmark
harnesses run *many* campaigns back to back; :class:`WarmPool` keeps a
fixed set of daemon processes alive across them, with two caches that
persist for the pool's lifetime:

* the **skeleton cache** (same dict :func:`repro.exec.engine.run_pair_job`
  threads through a pool initializer) — machine-build products keyed on
  (architecture, unit seed), shared by every campaign on the pool;
* a **payload cache** keyed on a content digest of the pickled
  :class:`~repro.exec.jobs.CampaignPayload` (which covers architecture,
  axis and config — identical campaigns hash identically), so re-running
  a campaign shape ships its payload zero times instead of once per
  worker.

Dispatch protocol
-----------------
Tasks go on one shared queue any worker may claim, so the payload must be
resident in *every* worker before its tasks are enqueued.  The driver
broadcasts ``("payload", key, payload)`` on each worker's private control
queue exactly once per (worker, key) and mirrors the worker-side FIFO
eviction, so a worker that dequeues a task for ``key`` either has it
cached or is guaranteed to find the install message already in flight on
its control queue — it blocks there, never on a lock.

Results return through the shared-memory channel
(:mod:`repro.exec.shm`): measurement arrays travel zero-pickle, small
headers ride the result queue.  Worker exceptions surface on the driver
as a :class:`RuntimeError` carrying the worker traceback.

Determinism is untouched: workers run the exact
:func:`~repro.exec.engine.run_pair_job` /
:func:`~repro.exec.engine.run_pair_batch` entry points, and the engine's
index-keyed merge absorbs completion-order nondeterminism.
"""

from __future__ import annotations

import atexit
import hashlib
import pickle
import traceback

from repro.errors import ConfigError
from repro.exec.engine import mp_context, run_pair_batch, run_pair_job
from repro.exec.shm import pack_results, unpack_results

__all__ = ["WarmPool"]

#: payloads cached per worker before FIFO eviction; sized for sweep-style
#: workloads that cycle through a handful of campaign shapes
PAYLOAD_CACHE_CAP = 8


def _daemon_main(ctrl, tasks, results) -> None:
    payloads: dict[str, object] = {}
    order: list[str] = []
    skeleton: dict = {}
    while True:
        task = tasks.get()
        if task is None:
            break
        task_id, key, jobs, batched = task
        try:
            while key not in payloads:
                # The driver guarantees the install message is in flight.
                _, pkey, blob = ctrl.get()
                payloads[pkey] = pickle.loads(blob)
                order.append(pkey)
                while len(order) > PAYLOAD_CACHE_CAP:
                    payloads.pop(order.pop(0), None)
            payload = payloads[key]
            if batched:
                out = run_pair_batch(jobs, payload, skeleton)
            else:
                out = [run_pair_job(job, payload, skeleton) for job in jobs]
            results.put(("ok", task_id, pack_results(out)))
        except BaseException:
            results.put(("error", task_id, traceback.format_exc()))


class WarmPool:
    """A fixed set of warm worker daemons shared across campaigns.

    Pass as ``pool=`` to :class:`repro.exec.engine.CampaignExecutor` (or
    :func:`~repro.exec.engine.run_campaign_parallel`).  Always
    :meth:`close` (or use as a context manager) when done; an ``atexit``
    hook reaps leaked pools.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        ctx = mp_context()
        self.workers = workers
        self._tasks = ctx.SimpleQueue()
        self._results = ctx.SimpleQueue()
        self._ctrls = [ctx.SimpleQueue() for _ in range(workers)]
        #: driver-side mirror of each worker's payload FIFO
        self._installed: list[list[str]] = [[] for _ in range(workers)]
        self._procs = [
            ctx.Process(
                target=_daemon_main,
                args=(self._ctrls[i], self._tasks, self._results),
                daemon=True,
            )
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        self._closed = False
        self._next_task_id = 0
        #: observability counters: installs broadcast vs. cached dispatches
        self.stats = {"payload_installs": 0, "payload_hits": 0}
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def _install_payload(self, payload) -> str:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        key = hashlib.sha256(blob).hexdigest()
        fresh = False
        for i, ctrl in enumerate(self._ctrls):
            mirror = self._installed[i]
            if key in mirror:
                continue
            fresh = True
            ctrl.put(("payload", key, blob))
            mirror.append(key)
            while len(mirror) > PAYLOAD_CACHE_CAP:
                mirror.pop(0)
        if fresh:
            self.stats["payload_installs"] += 1
        else:
            self.stats["payload_hits"] += 1
        return key

    def run_units(self, payload, units, batched: bool = True) -> list:
        """Run job chunks on the pool; returns the flat result list.

        ``units`` is a list of job lists (SoA chunks when ``batched``,
        singletons otherwise), already in dispatch order.
        """
        if self._closed:
            raise ConfigError("pool is closed")
        if not units:
            return []
        key = self._install_payload(payload)
        task_ids = set()
        for unit in units:
            task_id = self._next_task_id
            self._next_task_id += 1
            task_ids.add(task_id)
            self._tasks.put((task_id, key, unit, batched))
        out = []
        while task_ids:
            status, task_id, body = self._results.get()
            task_ids.discard(task_id)
            if status == "error":
                raise RuntimeError(f"warm worker failed:\n{body}")
            out.extend(unpack_results(body))
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            self._tasks.put(None)
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        atexit.unregister(self.close)

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
