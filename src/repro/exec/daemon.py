"""Persistent warm worker daemons that outlive a single campaign.

The per-campaign ``ProcessPoolExecutor`` pays its full setup bill every
run: fork, payload pickle/unpickle into every worker, and — costlier —
a cold skeleton cache, so each campaign re-derives the deterministic
latency-model structures its replicas need.  Sweeps and benchmark
harnesses run *many* campaigns back to back; :class:`WarmPool` keeps a
fixed set of daemon processes alive across them, with two caches that
persist for the pool's lifetime:

* the **skeleton cache** (same dict :func:`repro.exec.worker.run_pair_job`
  threads through a pool initializer) — machine-build products keyed on
  (architecture, unit seed), shared by every campaign on the pool;
* a **payload cache** keyed on a content digest of the pickled
  :class:`~repro.exec.jobs.CampaignPayload` (which covers architecture,
  axis and config — identical campaigns hash identically), so re-running
  a campaign shape ships its payload zero times instead of once per
  worker.

Dispatch protocol
-----------------
Tasks go on one shared queue any worker may claim, so the payload must be
resident in *every* worker before its tasks are enqueued.  The driver
broadcasts ``("payload", key, payload)`` on each worker's private control
queue exactly once per (worker, key) and mirrors the worker-side FIFO
eviction, so a worker that dequeues a task for ``key`` either has it
cached or is guaranteed to find the install message already in flight on
its control queue — it blocks there, never on a lock.

Results return through the shared-memory channel
(:mod:`repro.exec.shm`): measurement arrays travel zero-pickle, small
headers ride the result queue.  Worker exceptions surface on the driver
as a :class:`RuntimeError` carrying the worker traceback (legacy,
unsupervised dispatch) or feed the retry/quarantine machinery (when a
:class:`~repro.exec.jobs.SupervisionPolicy` is passed).

Supervision & delivery semantics
--------------------------------
With a policy, dispatch is **at-least-once with dedupe-by-unit**: the
driver keeps a bounded submission window, detects dead daemons between
result polls (respawning them, reinstalling the payload, and
re-dispatching every in-flight unit — the victim is unknowable, and the
engine's determinism contract makes duplicate execution harmless), and
rebuilds the whole pool when a unit blows its cost-model deadline (a hung
daemon cannot be interrupted any other way).  Results of superseded task
ids are consumed and their segments unlinked, never merged twice.
Segments are named ``<session>t<task id>`` so the driver can sweep the
leavings of workers that died mid-send (:func:`repro.exec.shm.cleanup_segment`).

Determinism is untouched: workers run the exact
:func:`~repro.exec.worker.run_pair_job` /
:func:`~repro.exec.worker.run_pair_batch` entry points, and results reach
the campaign event stream (:mod:`repro.core.stream`) as completion-order
``PairMeasured`` events whose grid indices let every sink reorder
deterministically — a retried or duplicated unit reproduces its results
bit for bit.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import os
import pickle
import queue as queue_mod
import time
import traceback

from repro.errors import ConfigError
from repro.exec.jobs import CalibrationJob
from repro.exec.worker import (
    calibrate_facet,
    fire_worker_faults,
    run_pair_batch,
    run_pair_job,
)
from repro.exec.faults import fault_plan
from repro.exec.supervise import UnitState, mp_context, quarantine_results
from repro.exec.shm import cleanup_segment, pack_results, unpack_results

__all__ = ["WarmPool"]

#: payloads cached per worker before FIFO eviction; sized for sweep-style
#: workloads that cycle through a handful of campaign shapes
PAYLOAD_CACHE_CAP = 8

#: distinguishes the shm-segment namespaces of pools sharing one driver
_POOL_SEQ = itertools.count()


def _daemon_main(ctrl, tasks, results, session: str) -> None:
    payloads: dict[str, object] = {}
    order: list[str] = []
    skeleton: dict = {}
    while True:
        task = tasks.get()
        if task is None:
            break
        task_id, key, jobs, batched = task
        try:
            while key not in payloads:
                # The driver guarantees the install message is in flight.
                _, pkey, blob = ctrl.get()
                payloads[pkey] = pickle.loads(blob)
                order.append(pkey)
                while len(order) > PAYLOAD_CACHE_CAP:
                    payloads.pop(order.pop(0), None)
            payload = payloads[key]
            if jobs and isinstance(jobs[0], CalibrationJob):
                # Facet calibration task: the payload is a
                # CalibrationPlan, the result a FacetCalibration — pure
                # objects with no measurement arrays, so they ride the
                # pickle envelope instead of a shared-memory segment.
                # Injected worker faults target PairJobs, not
                # calibration, so the fault hook is skipped.
                out = [
                    calibrate_facet(
                        payload.blueprint,
                        payload.config,
                        job.facet_index,
                        job.facet,
                        payload.start_time,
                    )
                    for job in jobs
                ]
                results.put(("ok", task_id, ("pickle", out)))
                continue
            fire_worker_faults(jobs, payload)
            if batched:
                out = run_pair_batch(jobs, payload, skeleton)
            else:
                out = [run_pair_job(job, payload, skeleton) for job in jobs]
            envelope = pack_results(out, name=f"{session}t{task_id}")
            config = getattr(payload, "config", None)
            plan = fault_plan(getattr(config, "inject_faults", None))
            if (
                plan is not None
                and plan.should_corrupt(jobs)
                and envelope[0] == "shm"
            ):
                # Transport-corruption fault: mail a segment name that
                # does not exist.  The real segment stays behind exactly
                # like a worker killed mid-send would leave it, so the
                # driver's transport-failure path must both retry the
                # unit and sweep the stray segment.
                envelope = ("shm", envelope[1] + "x", envelope[2])
            results.put(("ok", task_id, envelope))
        except BaseException:
            results.put(("error", task_id, traceback.format_exc()))


class WarmPool:
    """A fixed set of warm worker daemons shared across campaigns.

    Pass as ``pool=`` to :class:`repro.exec.engine.CampaignExecutor` (or
    :func:`~repro.exec.engine.run_campaign_parallel`).  Always
    :meth:`close` (or use as a context manager) when done; an ``atexit``
    hook reaps leaked pools.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        ctx = mp_context()
        self._ctx = ctx
        self.workers = workers
        # Real Queues (not SimpleQueues): supervision needs timed gets to
        # interleave result collection with worker health checks.
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._ctrls = [ctx.SimpleQueue() for _ in range(workers)]
        #: driver-side mirror of each worker's payload FIFO
        self._installed: list[list[str]] = [[] for _ in range(workers)]
        #: shm-segment namespace of this pool (worker results are named
        #: ``<session>t<task id>`` so the driver can sweep strays)
        self._session = f"rwp{os.getpid()}s{next(_POOL_SEQ)}"
        #: pickled payloads by digest, for reinstalls after a respawn
        self._blob_cache: dict[str, bytes] = {}
        self._blob_order: list[str] = []
        self._procs = [self._spawn(i) for i in range(workers)]
        self._closed = False
        self._next_task_id = 0
        #: observability counters: installs broadcast vs. cached
        #: dispatches, plus the supervision events (respawned daemons,
        #: full pool rebuilds after a deadline expiry)
        self.stats = {
            "payload_installs": 0,
            "payload_hits": 0,
            "worker_respawns": 0,
            "pool_rebuilds": 0,
        }
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def _spawn(self, i: int):
        proc = self._ctx.Process(
            target=_daemon_main,
            args=(self._ctrls[i], self._tasks, self._results, self._session),
            daemon=True,
        )
        proc.start()
        return proc

    def _segment_name(self, task_id: int) -> str:
        return f"{self._session}t{task_id}"

    def _push_payload(self, i: int, key: str) -> bool:
        """Send one payload install to worker ``i`` (mirror-deduplicated)."""
        mirror = self._installed[i]
        if key in mirror:
            return False
        self._ctrls[i].put(("payload", key, self._blob_cache[key]))
        mirror.append(key)
        while len(mirror) > PAYLOAD_CACHE_CAP:
            mirror.pop(0)
        return True

    def _install_payload(self, payload) -> str:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        key = hashlib.sha256(blob).hexdigest()
        if key not in self._blob_cache:
            self._blob_cache[key] = blob
            self._blob_order.append(key)
            while len(self._blob_order) > PAYLOAD_CACHE_CAP:
                self._blob_cache.pop(self._blob_order.pop(0), None)
        fresh = False
        for i in range(self.workers):
            if self._push_payload(i, key):
                fresh = True
        if fresh:
            self.stats["payload_installs"] += 1
        else:
            self.stats["payload_hits"] += 1
        return key

    # ------------------------------------------------------------------
    def _respawn_worker(self, i: int, key: "str | None") -> None:
        """Replace one dead daemon; reinstall the active payload."""
        proc = self._procs[i]
        if proc.is_alive():  # pragma: no cover - defensive
            proc.terminate()
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - unkillable worker
            proc.kill()
            proc.join(timeout=1.0)
        self._ctrls[i] = self._ctx.SimpleQueue()
        self._installed[i] = []
        self._procs[i] = self._spawn(i)
        self.stats["worker_respawns"] += 1
        if key is not None:
            self._push_payload(i, key)

    def _rebuild(self, key: "str | None", outstanding_ids) -> None:
        """Tear down and restart every daemon (hung-worker escalation).

        Terminated workers can die mid-``put``, so the shared queues are
        replaced wholesale rather than trusted; stray segments of the
        abandoned tasks are swept by name.
        """
        self.stats["pool_rebuilds"] += 1
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - unkillable worker
                proc.kill()
                proc.join(timeout=1.0)
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._ctrls = [self._ctx.SimpleQueue() for _ in range(self.workers)]
        self._installed = [[] for _ in range(self.workers)]
        for task_id in outstanding_ids:
            cleanup_segment(self._segment_name(task_id))
        self._procs = [self._spawn(i) for i in range(self.workers)]
        if key is not None:
            for i in range(self.workers):
                self._push_payload(i, key)

    def _discard_stale(self, status: str, body) -> None:
        """Consume a superseded result so its shm segment is released."""
        if status != "ok":
            return
        try:
            unpack_results(body)
        except Exception:
            if isinstance(body, tuple) and body and body[0] == "shm":
                cleanup_segment(body[1])

    def _drain_stale_results(self) -> None:
        while True:
            try:
                status, _task_id, body = self._results.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return
            self._discard_stale(status, body)

    # ------------------------------------------------------------------
    def run_units(
        self,
        payload,
        units,
        batched: bool = True,
        policy=None,
        costs=None,
        guard=None,
        on_result=None,
        on_retry=None,
    ) -> list:
        """Run job chunks on the pool; returns the flat result list.

        ``units`` is a list of job lists (SoA chunks when ``batched``,
        singletons otherwise), already in dispatch order.  Without a
        ``policy`` this is the legacy unsupervised path: everything is
        enqueued upfront and the first worker error raises.  With a
        :class:`~repro.exec.jobs.SupervisionPolicy` (plus optional
        per-unit ``costs``, a shutdown ``guard`` and an ``on_result``
        sink), dispatch is windowed and supervised — crash respawn +
        re-dispatch, deadline-triggered pool rebuild, bounded retries with
        quarantine — with at-least-once delivery deduplicated by unit.
        ``on_retry`` (if given) fires with ``(jobs, attempts, cause)``
        whenever a failed unit is about to be re-dispatched — the
        executor wires it to :class:`~repro.core.stream.PairRetried`
        events.
        """
        if self._closed:
            raise ConfigError("pool is closed")
        if not units:
            return []
        self._drain_stale_results()
        key = self._install_payload(payload)
        sink = on_result if on_result is not None else (lambda results: None)
        states = [
            UnitState(unit, 0.0 if costs is None else costs[i])
            for i, unit in enumerate(units)
        ]
        pending = list(states)
        outstanding: dict[int, UnitState] = {}
        out: list = []
        #: bounded submission window (supervised mode) keeps the task
        #: queue shallow so a shutdown signal leaves most pending units
        #: never-dispatched instead of already claimed by workers
        window = None if policy is None else max(2 * self.workers, 2)
        poll_s = 0.1 if policy is None else max(policy.poll_s, 0.01)

        def interrupted() -> bool:
            return guard is not None and guard.requested

        def in_flight() -> int:
            return len({id(s) for s in outstanding.values()})

        def submit(state: UnitState) -> None:
            task_id = self._next_task_id
            self._next_task_id += 1
            state.task_ids = {task_id}
            outstanding[task_id] = state
            timeout = (
                None if policy is None else policy.timeout_for(state.cost)
            )
            state.deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            self._tasks.put((task_id, key, state.jobs_for_attempt(), batched))

        def pump() -> None:
            while pending and not interrupted():
                if window is not None and in_flight() >= window:
                    return
                submit(pending.pop(0))

        def complete(state: UnitState, results) -> None:
            for task_id in state.task_ids:
                outstanding.pop(task_id, None)
            state.task_ids = set()
            for res in results:
                res.pair.n_retries = state.attempts
            out.extend(results)
            sink(results)

        def fail(state: UnitState, cause: str) -> None:
            for task_id in state.task_ids:
                outstanding.pop(task_id, None)
                # The worker may have died between creating its result
                # segment and mailing the name; sweep it by construction.
                cleanup_segment(self._segment_name(task_id))
            state.task_ids = set()
            if policy is None:
                raise RuntimeError(f"warm worker failed:\n{cause}")
            state.attempts += 1
            if state.attempts > policy.max_retries:
                complete(
                    state,
                    quarantine_results(state.jobs, state.attempts, cause),
                )
                return
            if on_retry is not None:
                on_retry(state.jobs, state.attempts, cause)
            backoff = policy.backoff_for(state.attempts)
            if backoff > 0.0:
                time.sleep(backoff)
            submit(state)

        def supervise() -> None:
            dead = [
                i
                for i, proc in enumerate(self._procs)
                if not proc.is_alive()
            ]
            if dead:
                if policy is None:
                    raise RuntimeError(
                        "warm worker died unexpectedly (crash without a "
                        "supervision policy to retry under)"
                    )
                for i in dead:
                    self._respawn_worker(i, key)
                # The dead daemon's claimed task is unknowable, so every
                # in-flight unit re-dispatches; duplicates are absorbed by
                # the dedupe-by-unit bookkeeping and determinism.
                for state in list(
                    {id(s): s for s in outstanding.values()}.values()
                ):
                    fail(state, "worker-crash (daemon died)")
                return
            if policy is None:
                return
            now = time.monotonic()
            distinct = list(
                {id(s): s for s in outstanding.values()}.values()
            )
            expired = [
                s
                for s in distinct
                if s.deadline is not None and now > s.deadline
            ]
            if not expired:
                return
            # A hung daemon cannot be interrupted; rebuild the pool and
            # re-dispatch the innocents at their current attempt count.
            self._rebuild(
                key, [tid for s in distinct for tid in s.task_ids]
            )
            expired_ids = {id(s) for s in expired}
            for state in distinct:
                if id(state) in expired_ids:
                    fail(state, "job-timeout (hung daemon)")
                else:
                    for task_id in state.task_ids:
                        outstanding.pop(task_id, None)
                    state.task_ids = set()
                    submit(state)

        pump()
        while outstanding or (pending and not interrupted()):
            try:
                status, task_id, body = self._results.get(timeout=poll_s)
            except queue_mod.Empty:
                supervise()
                pump()
                continue
            state = outstanding.get(task_id)
            if state is None:
                self._discard_stale(status, body)
                continue
            if status == "error":
                fail(state, body)
            else:
                try:
                    results = unpack_results(body)
                except Exception as exc:
                    fail(
                        state,
                        "result transport failed: "
                        f"{type(exc).__name__}: {exc}",
                    )
                else:
                    complete(state, results)
            pump()
        return out

    # ------------------------------------------------------------------
    def run_calibrations(self, plan, jobs) -> list:
        """Run facet calibrations on the pool; results in job order.

        ``plan`` is a :class:`~repro.exec.jobs.CalibrationPlan` (installed
        through the same content-addressed payload cache campaign payloads
        use) and ``jobs`` a list of
        :class:`~repro.exec.jobs.CalibrationJob`.  Each job becomes its
        own task so the facets spread across daemons; because every
        replica calibration is a pure function of the plan and the job,
        dispatch order cannot affect results.  Unsupervised: calibration
        runs before any measurement is journaled, so a dead daemon simply
        fails the campaign like the legacy unsupervised pair path does.
        """
        if self._closed:
            raise ConfigError("pool is closed")
        if not jobs:
            return []
        self._drain_stale_results()
        key = self._install_payload(plan)
        position: dict[int, int] = {}
        for job in jobs:
            task_id = self._next_task_id
            self._next_task_id += 1
            position[task_id] = len(position)
            self._tasks.put((task_id, key, [job], False))
        out: list = [None] * len(jobs)
        remaining = len(jobs)
        while remaining:
            try:
                status, task_id, body = self._results.get(timeout=0.1)
            except queue_mod.Empty:
                if any(not proc.is_alive() for proc in self._procs):
                    raise RuntimeError(
                        "warm worker died during facet calibration"
                    )
                continue
            if task_id not in position:
                self._discard_stale(status, body)
                continue
            if status == "error":
                raise RuntimeError(f"warm worker failed:\n{body}")
            out[position.pop(task_id)] = unpack_results(body)[0]
            remaining -= 1
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            for _ in self._procs:
                self._tasks.put(None)
        except Exception:  # pragma: no cover - queue already torn down
            pass
        for proc in self._procs:
            proc.join(timeout=5)
        # Escalate: a wedged or hung daemon must not leak past close().
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - unkillable worker
                proc.kill()
                proc.join(timeout=2)
        try:
            self._drain_stale_results()
        except Exception:  # pragma: no cover - queue already torn down
            pass
        self._sweep_session_segments()
        atexit.unregister(self.close)

    def _sweep_session_segments(self) -> None:
        """Unlink any shm segment this pool's workers left behind."""
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
            return
        for entry in os.listdir(shm_dir):
            if entry.startswith(self._session):
                cleanup_segment(entry)

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
