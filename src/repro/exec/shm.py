"""Zero-pickle result transport over ``multiprocessing.shared_memory``.

A campaign's payload travels driver→worker once per process, but results
travel worker→driver once per job — and a pair's measurement list is by
far the largest part of a :class:`~repro.exec.jobs.PairJobResult`.
Pickling it serializes every :class:`SwitchingLatencyMeasurement` object
graph per measurement; this module instead flattens all measurement
records of a result batch into one shared-memory float64 matrix the
driver maps directly, so the arrays cross the process boundary without
serialization.  Only a small header — per-pair scalars, skip metadata,
outlier labels, row offsets — still rides pickle.

Layout
------
One ``(total_rows, 8)`` float64 matrix, one row per measurement across
all pairs of the batch, columns::

    0 latency_s   1 ts_acc   2 te_acc   3 n_valid_sm
    4 window_iterations   5 ground_truth_s (0 when absent)
    6 ground_truth_is_none flag   7 ground_truth_outlier flag

Integers and bools round-trip exactly through float64 (all values are
far below 2**53); floats are stored verbatim, so reconstruction is
bit-exact — the engine equality tests hold with or without this channel.

The driver owns the segment lifetime: workers create and fill a segment,
close their mapping, and send its name; the driver attaches, rebuilds,
then closes *and unlinks*.  Hosts without a functional shared-memory
implementation (or empty batches) fall back to plain pickle — the
``("pickle", results)`` envelope — transparently.

Leak discipline
---------------
Every path that can abandon a segment cleans it up: a worker whose fill
raises unlinks its own segment before re-raising, and a driver whose
unpack fails mid-rebuild still unlinks in its ``finally``.  The one
process that can clean *nothing* is a worker killed mid-send — which is
why the warm pool names its segments with a per-pool session prefix
(:func:`pack_results`'s ``name=``) and sweeps stray segments with
:func:`cleanup_segment` when it detects a dead or hung worker.
"""

from __future__ import annotations

import dataclasses

import numpy as np

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

from repro.core.results import PairResult  # noqa: F401 - re-export context
from repro.core.results import SwitchingLatencyMeasurement
from repro.exec.jobs import PairJobResult

__all__ = ["cleanup_segment", "pack_results", "unpack_results"]

_N_COLS = 8


def cleanup_segment(name: str) -> bool:
    """Unlink a shared-memory segment by name if it exists.

    The driver-side sweep for segments abandoned by workers that died (or
    were killed) between creating a segment and the driver consuming it.
    Returns whether a segment was actually removed; a missing segment is
    the common, healthy case.
    """
    if shared_memory is None:
        return False
    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError, ValueError):
        return False
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - lost the unlink race
        return False
    return True


def pack_results(results: list[PairJobResult], name: "str | None" = None):
    """Flatten a result batch into a shared-memory envelope.

    Returns ``("shm", name, header)`` — or ``("pickle", results)`` when
    shared memory is unavailable or there is nothing to flatten.

    ``name`` (optional) requests a specific segment name, letting the
    warm pool derive names from its session + task id so the driver can
    sweep segments of workers that died mid-send.  A leftover segment
    under the requested name (the previous, killed attempt of the same
    task) is unlinked and replaced.
    """
    total = sum(len(r.pair.measurements) for r in results)
    if shared_memory is None or total == 0:
        return ("pickle", results)

    size = total * _N_COLS * 8
    try:
        try:
            seg = shared_memory.SharedMemory(
                create=True, size=size, name=name
            )
        except FileExistsError:
            cleanup_segment(name)
            seg = shared_memory.SharedMemory(
                create=True, size=size, name=name
            )
    except (OSError, ValueError):  # pragma: no cover - degraded host
        return ("pickle", results)
    # Ownership moves to the driver (which unlinks after unpacking), so
    # the creating process must drop its resource-tracker registration or
    # the tracker warns about an "leaked" segment at worker shutdown
    # (cpython#82300: SharedMemory assumes creator == owner).
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass

    try:
        matrix = np.ndarray(
            (total, _N_COLS), dtype=np.float64, buffer=seg.buf
        )
        header = []
        row = 0
        for res in results:
            ms = res.pair.measurements
            for i, m in enumerate(ms):
                matrix[row + i] = (
                    m.latency_s,
                    m.ts_acc,
                    m.te_acc,
                    float(m.n_valid_sm),
                    float(m.window_iterations),
                    0.0 if m.ground_truth_s is None else m.ground_truth_s,
                    1.0 if m.ground_truth_s is None else 0.0,
                    1.0 if m.ground_truth_outlier else 0.0,
                )
            header.append(
                (
                    res.index,
                    res.elapsed_virtual_s,
                    dataclasses.replace(res.pair, measurements=[]),
                    row,
                    len(ms),
                )
            )
            row += len(ms)
    except BaseException:
        # The driver will never see this segment's name; reap it here or
        # it leaks for the life of the host.
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        raise
    seg_name = seg.name
    seg.close()
    return ("shm", seg_name, header)


def unpack_results(envelope) -> list[PairJobResult]:
    """Rebuild a result batch from :func:`pack_results`'s envelope.

    Shared-memory segments are closed *and unlinked* here — the driver
    side owns their lifetime.
    """
    kind = envelope[0]
    if kind == "pickle":
        return envelope[1]

    _, name, header = envelope
    seg = shared_memory.SharedMemory(name=name)
    try:
        total = sum(count for *_, count in header)
        matrix = np.ndarray(
            (total, _N_COLS), dtype=np.float64, buffer=seg.buf
        )
        out = []
        for index, elapsed, pair, row, count in header:
            measurements = []
            for r in range(row, row + count):
                rec = matrix[r]
                measurements.append(
                    SwitchingLatencyMeasurement(
                        latency_s=float(rec[0]),
                        ts_acc=float(rec[1]),
                        te_acc=float(rec[2]),
                        n_valid_sm=int(rec[3]),
                        window_iterations=int(rec[4]),
                        ground_truth_s=(
                            None if rec[6] != 0.0 else float(rec[5])
                        ),
                        ground_truth_outlier=rec[7] != 0.0,
                    )
                )
            pair.measurements = measurements
            out.append(
                PairJobResult(
                    index=index, pair=pair, elapsed_virtual_s=elapsed
                )
            )
        return out
    finally:
        seg.close()
        seg.unlink()
