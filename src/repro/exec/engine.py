"""The campaign executor: phase 1 once, pairs fanned out deterministically.

Execution model
---------------
Phase 1 and the probe stage run on the driver's machine with exactly the
same draws as the legacy serial loop — they are inherently sequential
(workload growth feeds back into the kernel) and cheap; core×memory
campaigns repeat them once per memory clock.  Every valid grid point then
becomes a :class:`~repro.exec.jobs.PairJob`: a handful of numbers (flat
grid index, SM frequencies, and — for 2-D campaigns — the memory-clock
coordinate).  All heavy shared inputs — config, blueprint, per-facet
phase-1 statistics, probe window estimates, campaign epoch — travel once
per worker process as a :class:`~repro.exec.jobs.CampaignPayload` through
the pool initializer, never inside jobs.

Workers rebuild the machine from the blueprint (same GPU spec, same unit
seed, same thermal configuration) with a seed stream derived from the
pair index, and run the unchanged :func:`repro.core.campaign.measure_pair`
loop.  A per-process *skeleton cache* keeps the deterministic, immutable
parts of the machine build — the per-pair latency-model structures —
alive across jobs, so replica construction cost is paid once per
(architecture, unit seed) rather than once per job.

Dispatch is **straggler-aware**: jobs are submitted longest-expected-first
(``expected_pair_cost``, a cost model built from the probe latencies) and
collected with ``as_completed``, so a slow pair starts early instead of
serializing the pool tail.  Because jobs share no mutable state and the
merge is keyed by pair index, the :class:`CampaignResult` — per-pair
measurements, outlier labels, CSV bytes — is bit-identical for every
worker count and submission order; scheduling only changes wall-clock
time.

``workers == 1`` executes the jobs in-process (no pool, no pickling) but
through the same job pipeline, so it reproduces ``workers == N`` exactly.
The legacy single-timeline semantics remain available through
``run_campaign(machine, config)`` with ``workers=None``.

Process pools use the ``fork`` start method where available (Linux) so
workers inherit the loaded modules; ``spawn`` elsewhere.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.core.campaign import (
    LatestBenchmark,
    facet_skip_reason,
    measure_pair,
)
from repro.core.phase1 import run_phase1
from repro.core.config import LatestConfig
from repro.core.context import BenchContext
from repro.core.csvio import write_campaign_csvs
from repro.core.results import CampaignResult, PairResult
from repro.errors import ConfigError
from repro.exec.jobs import (
    CampaignPayload,
    PairJob,
    PairJobResult,
    ProbeCostModel,
    pair_seed_sequence,
)
from repro.machine import Machine

__all__ = [
    "CampaignExecutor",
    "mp_context",
    "run_campaign_parallel",
    "run_pair_batch",
    "run_pair_job",
]


def mp_context():
    """The multiprocessing context every repro process pool should use.

    ``fork`` where available (Linux — workers inherit loaded modules),
    ``spawn`` elsewhere.  Public so sweeps and external drivers share one
    start-method policy instead of reaching into engine internals.
    """
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(method)


#: per-process shared state installed by the pool initializer
_WORKER_PAYLOAD: CampaignPayload | None = None
#: per-process skeleton cache: (architecture, unit_seed) -> pair-model dict
_WORKER_SKELETON: dict = {}


def _worker_init(payload: CampaignPayload) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload
    _WORKER_SKELETON.clear()


def _worker_run(job: PairJob) -> PairJobResult:
    assert _WORKER_PAYLOAD is not None, "pool initializer did not run"
    return run_pair_job(job, _WORKER_PAYLOAD, _WORKER_SKELETON)


def _worker_run_batch(jobs: list[PairJob]) -> list[PairJobResult]:
    assert _WORKER_PAYLOAD is not None, "pool initializer did not run"
    return run_pair_batch(jobs, _WORKER_PAYLOAD, _WORKER_SKELETON)


def _build_job_replica(
    job: PairJob, payload: CampaignPayload, skeleton: dict | None
):
    """Build one job's replica machine + bench (shared by both job paths)."""
    seed = pair_seed_sequence(
        payload.blueprint,
        payload.config.device_index,
        job.index,
        job.memory_index,
        job.axis,
        facet_index=job.locked_sm_index,
    )
    machine = payload.blueprint.build(seed=seed, start_time=payload.epoch)
    if skeleton is not None:
        for device in machine.devices:
            key = (device.spec.architecture, device.unit_seed)
            device.latency_model.use_shared_cache(
                skeleton.setdefault(key, {})
            )
            # Memory pair models live in their own cache: SM and memory
            # pairs can share numerically identical frequency keys.
            device.mem_latency_model.use_shared_cache(
                skeleton.setdefault(key + ("memory",), {})
            )
    return machine, BenchContext(machine, payload.config)


def run_pair_batch(
    jobs: list[PairJob],
    payload: CampaignPayload,
    skeleton: dict | None = None,
) -> list[PairJobResult]:
    """Execute a facet-homogeneous chunk of jobs in SoA lockstep.

    Each job still gets its own replica machine with its own per-pair
    seed stream — identical to :func:`run_pair_job` — but the measurement
    loops advance in lockstep through
    :func:`repro.core.pairbatch.measure_pair_batch`, sharing one
    cross-pair evaluation sweep per round.  Jobs whose facet clock cannot
    be reached become skipped results without joining the batch.
    """
    from repro.core.pairbatch import measure_pair_batch

    results: list[PairJobResult] = []
    items = []
    batched = []
    for job in jobs:
        machine, bench = _build_job_replica(job, payload, skeleton)
        t0 = machine.clock.now
        if not bench.prepare_facet_clock(job.facet):
            pair = PairResult(
                init_mhz=float(job.init_mhz),
                target_mhz=float(job.target_mhz),
                skipped=True,
                skip_reason=bench.axis.facet_fail_reason,
                axis=job.axis,
            )
            pair.memory_mhz = job.memory_mhz
            pair.locked_sm_mhz = job.locked_sm_mhz
            results.append(
                PairJobResult(
                    index=job.index,
                    pair=pair,
                    elapsed_virtual_s=machine.clock.now - t0,
                )
            )
            continue
        items.append(
            (
                bench,
                job.init_mhz,
                job.target_mhz,
                payload.phase1_for(job.facet),
                payload.probe_for(job.facet),
            )
        )
        batched.append((job, machine, t0))

    if items:
        pairs = measure_pair_batch(items, payload.config.pass_block_size)
        for (job, machine, t0), pair in zip(batched, pairs):
            pair.memory_mhz = job.memory_mhz
            pair.locked_sm_mhz = job.locked_sm_mhz
            results.append(
                PairJobResult(
                    index=job.index,
                    pair=pair,
                    elapsed_virtual_s=machine.clock.now - t0,
                )
            )
    return results


def run_pair_job(
    job: PairJob,
    payload: CampaignPayload,
    skeleton: dict | None = None,
) -> PairJobResult:
    """Execute one pair job on a replica machine.

    ``skeleton`` (optional) is a process-lifetime cache of deterministic
    machine-build products shared across jobs; passing it never changes
    results, only replica construction cost.  Core×memory jobs lock and
    settle their memory P-state before measuring, against the phase-1
    characterization taken at that same clock.
    """
    machine, bench = _build_job_replica(job, payload, skeleton)
    t0 = machine.clock.now
    # The facet clock first: the locked memory P-state of a grid job, or
    # the locked SM clock of a memory-/power-axis job (a fresh replica
    # machine boots unlocked, so every worker must restore the campaign
    # facet).
    if not bench.prepare_facet_clock(job.facet):
        pair = PairResult(
            init_mhz=float(job.init_mhz),
            target_mhz=float(job.target_mhz),
            skipped=True,
            skip_reason=bench.axis.facet_fail_reason,
            axis=job.axis,
        )
    else:
        pair = measure_pair(
            bench,
            job.init_mhz,
            job.target_mhz,
            payload.phase1_for(job.facet),
            payload.probe_for(job.facet),
        )
    pair.memory_mhz = job.memory_mhz
    pair.locked_sm_mhz = job.locked_sm_mhz
    return PairJobResult(
        index=job.index,
        pair=pair,
        elapsed_virtual_s=machine.clock.now - t0,
    )


class CampaignExecutor:
    """Deterministic (optionally parallel) campaign execution.

    Parameters
    ----------
    machine:
        Campaign machine built by :func:`repro.machine.make_machine` (it
        must carry a blueprint so workers can replicate it).
    config:
        Campaign configuration; CSV output (if any) is written by the
        driver after the merge, exactly like the serial loop.
    workers:
        Process count.  ``1`` runs the job pipeline in-process; any value
        produces the identical :class:`CampaignResult`.
    pool:
        Optional :class:`repro.exec.daemon.WarmPool` of persistent worker
        daemons.  When given, jobs dispatch through it instead of a
        per-campaign ``ProcessPoolExecutor`` — the payload and skeleton
        caches then survive across campaigns.  Results are identical.
    """

    def __init__(
        self,
        machine: Machine,
        config: LatestConfig,
        workers: int = 1,
        pool=None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if machine.blueprint is None:
            raise ConfigError(
                "campaign executor needs a machine built by make_machine() "
                "(hand-assembled machines carry no replication blueprint)"
            )
        self.machine = machine
        self.config = config
        self.workers = workers
        self.pool = pool
        #: per-facet fixed pass duration for the dispatch cost model,
        #: filled by :meth:`run` while each facet clock is prepared
        self._fixed_pass_by_facet: dict = {}

    # ------------------------------------------------------------------
    def _build_jobs(self, phase1_by_facet: dict) -> tuple[list[PairJob], dict]:
        """Valid grid points become jobs; the rest become skipped results.

        Job indices are flat positions in the facet-major campaign grid
        (``config.facet_plan()`` × ``config.pairs()``), which for legacy
        campaigns reduces to the pair's position in ``config.pairs()`` —
        the seed-stream contract of PR 1 is untouched.
        """
        axis = self.config.swept_axis()
        facet_plan = self.config.facet_plan()
        grid = self.config.memory_frequencies is not None
        sm_pairs = self.config.pairs()

        jobs: list[PairJob] = []
        pairs: dict = {}
        for facet_index, facet in enumerate(facet_plan):
            phase1 = phase1_by_facet.get(facet)
            valid = set(phase1.valid_pairs) if phase1 is not None else set()
            sm_facet = None if grid or facet is None else float(facet)
            for pair_index, (init, target) in enumerate(sm_pairs):
                sm_key = (float(init), float(target))
                key = sm_key if facet is None else sm_key + (float(facet),)
                reason = facet_skip_reason(
                    phase1, sm_key, valid, axis.facet_fail_reason
                )
                if reason is not None:
                    pairs[key] = PairResult(
                        init_mhz=sm_key[0],
                        target_mhz=sm_key[1],
                        skipped=True,
                        skip_reason=reason,
                        memory_mhz=facet if grid else None,
                        locked_sm_mhz=sm_facet,
                        axis=axis.name,
                    )
                    continue
                pairs[key] = None  # placeholder, filled by the job result
                jobs.append(
                    PairJob(
                        index=facet_index * len(sm_pairs) + pair_index,
                        init_mhz=sm_key[0],
                        target_mhz=sm_key[1],
                        memory_mhz=facet if grid else None,
                        memory_index=facet_index if grid else None,
                        axis=axis.name,
                        locked_sm_mhz=sm_facet,
                        locked_sm_index=(
                            None if sm_facet is None else facet_index
                        ),
                    )
                )
        return jobs, pairs

    def _batch_chunks(self, jobs: list[PairJob]) -> list[list[PairJob]]:
        """Facet-homogeneous job chunks of at most ``pair_batch_size``.

        Jobs arrive facet-major in index order, so chunking consecutive
        runs keeps every chunk on one facet (one phase-1/probe pairing)
        and its members in pair-index order.
        """
        size = self.config.pair_batch_size
        chunks: list[list[PairJob]] = []
        run: list[PairJob] = []
        for job in jobs:
            if run and (job.facet != run[-1].facet or len(run) >= size):
                chunks.append(run)
                run = []
            run.append(job)
        if run:
            chunks.append(run)
        return chunks

    def _execute(
        self, jobs: list[PairJob], payload: CampaignPayload
    ) -> list[PairJobResult]:
        # The SoA lockstep tier needs the pass-block pipeline underneath
        # (its runners speculate in deferred blocks).
        batching = (
            self.config.pair_batch_size is not None
            and self.config.pass_block_size is not None
        )
        if self.pool is None and (self.workers == 1 or len(jobs) <= 1):
            skeleton: dict = {}
            if batching:
                results: list[PairJobResult] = []
                for chunk in self._batch_chunks(jobs):
                    results.extend(run_pair_batch(chunk, payload, skeleton))
                return results
            return [run_pair_job(job, payload, skeleton) for job in jobs]

        # Straggler-aware dispatch: longest-expected pair first, so the
        # costliest job never starts last and the pool drains evenly.
        # ``as_completed`` keeps the driver free to merge early finishers;
        # ordering cannot affect results (the merge is index-keyed).
        # Each facet gets the cost model built from *its own* probe
        # latencies — iteration times (and thus pair costs) respond to the
        # facet clock (the locked memory P-state of a grid, the locked SM
        # clock of a facet sweep), so ranking a k≥2-facet campaign with
        # the first facet's probes would misorder whole facets — plus the
        # facet's fixed per-pass duration, so cross-facet ordering stays
        # honest when locked-SM facets differ in iteration time.
        models: dict[float | None, ProbeCostModel] = {
            facet: ProbeCostModel(
                payload.probe_for(facet),
                fixed_pass_s=self._fixed_pass_by_facet.get(facet, 0.0),
            )
            for facet in {job.facet for job in jobs}
        }

        def job_cost(job: PairJob) -> float:
            return models[job.facet].cost(job.init_mhz, job.target_mhz)

        if batching:
            chunks = self._batch_chunks(jobs)
            ordered_chunks = sorted(
                chunks,
                key=lambda chunk: (
                    -sum(job_cost(job) for job in chunk),
                    chunk[0].index,
                ),
            )
            if self.pool is not None:
                return self.pool.run_units(payload, ordered_chunks)
            n_workers = min(self.workers, len(ordered_chunks))
            with ProcessPoolExecutor(
                max_workers=n_workers,
                mp_context=mp_context(),
                initializer=_worker_init,
                initargs=(payload,),
            ) as pool:
                futures = [
                    pool.submit(_worker_run_batch, chunk)
                    for chunk in ordered_chunks
                ]
                out: list[PairJobResult] = []
                for future in as_completed(futures):
                    out.extend(future.result())
                return out

        ordered = sorted(jobs, key=lambda job: (-job_cost(job), job.index))
        if self.pool is not None:
            return self.pool.run_units(
                payload, [[job] for job in ordered], batched=False
            )
        n_workers = min(self.workers, len(jobs))
        with ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=mp_context(),
            initializer=_worker_init,
            initargs=(payload,),
        ) as pool:
            futures = [pool.submit(_worker_run, job) for job in ordered]
            return [future.result() for future in as_completed(futures)]

    def _merge_results(
        self,
        jobs: list[PairJob],
        results: list[PairJobResult],
        pairs: dict,
    ) -> float:
        """Merge job results by index; returns the summed virtual cost.

        The merge is keyed by pair index so neither submission nor
        completion order can influence the campaign result; the returned
        total advances the driver clock so downstream consumers still see
        time passing.
        """
        results.sort(key=lambda r: r.index)
        by_index = {job.index: job for job in jobs}
        total_elapsed = 0.0
        for res in results:
            job = by_index[res.index]
            sm_key = (job.init_mhz, job.target_mhz)
            key = sm_key if job.facet is None else sm_key + (job.facet,)
            pairs[key] = res.pair
            total_elapsed += res.elapsed_virtual_s
        return total_elapsed

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        machine, config = self.machine, self.config
        t_begin = machine.clock.now
        facet_plan = config.facet_plan()
        sm_facets = config.locked_sm_plan()

        # Phase 1 + probe: sequential by nature, same draws as the legacy
        # loop (the driver machine's clock and RNG advance identically).
        # Faceted campaigns (core×memory grids, locked-SM facet sweeps)
        # repeat the characterization once per facet on the driver machine
        # before any job is built.
        bench_driver = LatestBenchmark(machine, config)
        phase1_by_facet: dict = {}
        probe_by_facet: dict = {}
        for facet in facet_plan:
            if not bench_driver.bench.prepare_facet_clock(facet):
                continue
            phase1 = run_phase1(bench_driver.bench)
            phase1_by_facet[facet] = phase1
            probe_by_facet[facet] = (
                bench_driver._probe_windows(phase1)
                if phase1.valid_pairs
                else None
            )
            # Fixed per-pass duration at this facet (delay + confirmation
            # iterations at the facet's own iteration time): the additive
            # term the dispatch cost model needs to rank jobs *across*
            # facets.  Evaluated here because iteration_duration_s reads
            # the locked facet clock, which is prepared right now.
            self._fixed_pass_by_facet[facet] = (
                config.delay_iterations + config.confirm_iterations
            ) * bench_driver.bench.axis.iteration_duration_s(
                bench_driver.bench,
                phase1.kernel,
                max(config.frequencies),
            )
        first = facet_plan[0]
        single_facet = facet_plan == (None,)
        payload = CampaignPayload(
            blueprint=machine.blueprint,
            config=config,
            phase1=phase1_by_facet.get(first),
            probe=probe_by_facet.get(first),
            epoch=machine.clock.now,
            phase1_by_memory=None if single_facet else phase1_by_facet,
            probe_by_memory=None if single_facet else probe_by_facet,
        )

        jobs, pairs = self._build_jobs(phase1_by_facet)
        results = self._execute(jobs, payload)
        total_elapsed = self._merge_results(jobs, results, pairs)
        if total_elapsed > 0.0:
            machine.clock.advance(total_elapsed)

        result = CampaignResult(
            gpu_name=bench_driver.bench.device.spec.name,
            architecture=bench_driver.bench.device.spec.architecture,
            hostname=machine.hostname,
            device_index=config.device_index,
            frequencies=config.frequencies,
            pairs=pairs,
            phase1=phase1_by_facet.get(first),
            wall_virtual_s=machine.clock.now - t_begin,
            memory_frequencies=config.memory_frequencies,
            phase1_by_memory=None if single_facet else phase1_by_facet,
            axis=config.axis,
            locked_sm_mhz=(
                None
                if sm_facets is not None
                else config.swept_axis().locked_complement_mhz(
                    bench_driver.bench
                )
            ),
            locked_sm_frequencies=sm_facets,
        )
        if config.output_dir is not None:
            write_campaign_csvs(config.output_dir, result)
        return result


def run_campaign_parallel(
    machine: Machine,
    config: LatestConfig,
    workers: int = 1,
    pool=None,
) -> CampaignResult:
    """Run a campaign through the execution engine (see module docs)."""
    return CampaignExecutor(machine, config, workers=workers, pool=pool).run()
