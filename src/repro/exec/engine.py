"""The campaign executor: phase 1 once, pairs fanned out deterministically.

Execution model
---------------
Phase 1 and the probe stage run on the driver's machine with exactly the
same draws as the legacy serial loop — they are inherently sequential
(workload growth feeds back into the kernel) and cheap; core×memory
campaigns repeat them once per memory clock.  Every valid grid point then
becomes a :class:`~repro.exec.jobs.PairJob`: a handful of numbers (flat
grid index, SM frequencies, and — for 2-D campaigns — the memory-clock
coordinate).  All heavy shared inputs — config, blueprint, per-facet
phase-1 statistics, probe window estimates, campaign epoch — travel once
per worker process as a :class:`~repro.exec.jobs.CampaignPayload` through
the pool initializer, never inside jobs.

Workers rebuild the machine from the blueprint (same GPU spec, same unit
seed, same thermal configuration) with a seed stream derived from the
pair index, and run the unchanged :func:`repro.core.campaign.measure_pair`
loop.  A per-process *skeleton cache* keeps the deterministic, immutable
parts of the machine build — the per-pair latency-model structures —
alive across jobs, so replica construction cost is paid once per
(architecture, unit seed) rather than once per job.

Dispatch is **straggler-aware**: jobs are submitted longest-expected-first
(``expected_pair_cost``, a cost model built from the probe latencies) and
collected with ``as_completed``, so a slow pair starts early instead of
serializing the pool tail.  Because jobs share no mutable state and the
merge is keyed by pair index, the :class:`CampaignResult` — per-pair
measurements, outlier labels, CSV bytes — is bit-identical for every
worker count and submission order; scheduling only changes wall-clock
time.

``workers == 1`` executes the jobs in-process (no pool, no pickling) but
through the same job pipeline, so it reproduces ``workers == N`` exactly.
The legacy single-timeline semantics remain available through
``run_campaign(machine, config)`` with ``workers=None``.

Process pools use the ``fork`` start method where available (Linux) so
workers inherit the loaded modules; ``spawn`` elsewhere.

Fault tolerance
---------------
Dispatch is **supervised** (:class:`~repro.exec.jobs.SupervisionPolicy`):
a unit (one job, or one SoA chunk) that crashes its worker, times out
against its cost-model-derived deadline, or fails result transport is
retried on a rebuilt pool with exponential backoff — and because replica
seed streams derive only from grid indices, a retry is *bit-identical* to
an undisturbed run.  A unit that keeps failing past
``config.max_job_retries`` is quarantined: its pairs become recorded skip
reasons (the same skip machinery phase 1 uses) instead of aborting the
campaign.  With a journal attached
(:class:`~repro.core.journal.CampaignJournal`), every completed pair is
durably recorded as it merges, SIGINT/SIGTERM drain in-flight units and
raise :class:`~repro.errors.CampaignInterrupted`, and ``resume=True``
validates the campaign fingerprint, merges the journaled pairs, and
measures only the rest — reconstructing the identical
:class:`CampaignResult`.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from dataclasses import replace as dc_replace

from repro.core.campaign import (
    LatestBenchmark,
    facet_skip_reason,
    measure_pair,
)
from repro.core.journal import (
    CampaignJournal,
    ShutdownGuard,
    campaign_fingerprint,
)
from repro.core.phase1 import run_phase1
from repro.core.config import LatestConfig
from repro.core.context import BenchContext
from repro.core.csvio import write_campaign_csvs
from repro.core.results import CampaignResult, PairResult
from repro.errors import CampaignInterrupted, ConfigError
from repro.exec.faults import FaultPlan, fault_plan
from repro.exec.jobs import (
    CampaignPayload,
    PairJob,
    PairJobResult,
    ProbeCostModel,
    SupervisionPolicy,
    pair_seed_sequence,
)
from repro.machine import Machine

__all__ = [
    "CampaignExecutor",
    "mp_context",
    "run_campaign_parallel",
    "run_pair_batch",
    "run_pair_job",
]


def mp_context():
    """The multiprocessing context every repro process pool should use.

    ``fork`` where available (Linux — workers inherit loaded modules),
    ``spawn`` elsewhere.  Public so sweeps and external drivers share one
    start-method policy instead of reaching into engine internals.
    """
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(method)


#: per-process shared state installed by the pool initializer
_WORKER_PAYLOAD: CampaignPayload | None = None
#: per-process skeleton cache: (architecture, unit_seed) -> pair-model dict
_WORKER_SKELETON: dict = {}


def _worker_init(payload: CampaignPayload) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload
    _WORKER_SKELETON.clear()


def fire_worker_faults(jobs, payload, in_process: bool = False) -> None:
    """Trigger any injected worker faults gating this unit's jobs.

    Lives outside :func:`run_pair_job` / :func:`run_pair_batch` so the
    measurement entry points stay pure; every dispatch front-end (pool
    worker, warm-pool daemon, in-process runner) calls it right before
    measuring.  ``in_process=True`` downgrades ``kill`` to an exception —
    the in-process runner shares the driver process, and a fault harness
    must never take down the campaign driver itself.
    """
    config = getattr(payload, "config", None)
    plan = fault_plan(getattr(config, "inject_faults", None))
    if plan is None:
        return
    for job in jobs:
        plan.fire_worker(job, in_process=in_process)


def _worker_run(job: PairJob) -> PairJobResult:
    assert _WORKER_PAYLOAD is not None, "pool initializer did not run"
    fire_worker_faults([job], _WORKER_PAYLOAD)
    return run_pair_job(job, _WORKER_PAYLOAD, _WORKER_SKELETON)


def _worker_run_unit(jobs: list[PairJob]) -> list[PairJobResult]:
    """Non-batched unit entry point: each job measured independently."""
    assert _WORKER_PAYLOAD is not None, "pool initializer did not run"
    fire_worker_faults(jobs, _WORKER_PAYLOAD)
    return [
        run_pair_job(job, _WORKER_PAYLOAD, _WORKER_SKELETON) for job in jobs
    ]


def _worker_run_batch(jobs: list[PairJob]) -> list[PairJobResult]:
    assert _WORKER_PAYLOAD is not None, "pool initializer did not run"
    fire_worker_faults(jobs, _WORKER_PAYLOAD)
    return run_pair_batch(jobs, _WORKER_PAYLOAD, _WORKER_SKELETON)


class _UnitState:
    """Supervision bookkeeping for one dispatch unit (a job list)."""

    __slots__ = ("jobs", "attempts", "cost", "deadline", "task_ids")

    def __init__(self, jobs: list[PairJob], cost: float = 0.0) -> None:
        self.jobs = jobs
        self.attempts = 0
        self.cost = cost
        #: wall-clock deadline of the current dispatch (None = no timeout)
        self.deadline: float | None = None
        #: warm-pool task ids currently mapped to this unit
        self.task_ids: set[int] = set()

    def jobs_for_attempt(self) -> list[PairJob]:
        if self.attempts == 0:
            return self.jobs
        return [dc_replace(job, attempt=self.attempts) for job in self.jobs]


def _quarantine_results(
    jobs: list[PairJob], attempts: int, cause: str
) -> list[PairJobResult]:
    """Skip results for a unit that exhausted its retry budget.

    A persistently failing grid point becomes a recorded skip reason —
    the same machinery phase 1 uses for unreachable pairs — instead of
    aborting the whole campaign.  Zero virtual cost: the pair never
    measured, so the campaign clock must not advance for it.
    """
    lines = str(cause).strip().splitlines()
    summary = (lines[-1] if lines else str(cause))[:200]
    reason = f"quarantined after {attempts} failed attempts: {summary}"
    out: list[PairJobResult] = []
    for job in jobs:
        pair = PairResult(
            init_mhz=float(job.init_mhz),
            target_mhz=float(job.target_mhz),
            skipped=True,
            skip_reason=reason,
            memory_mhz=job.memory_mhz,
            locked_sm_mhz=job.locked_sm_mhz,
            axis=job.axis,
        )
        pair.n_retries = attempts
        out.append(
            PairJobResult(index=job.index, pair=pair, elapsed_virtual_s=0.0)
        )
    return out


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool whose workers cannot be trusted to exit (hangs)."""
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in procs:
        proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=1.0)


def _build_job_replica(
    job: PairJob, payload: CampaignPayload, skeleton: dict | None
):
    """Build one job's replica machine + bench (shared by both job paths)."""
    seed = pair_seed_sequence(
        payload.blueprint,
        payload.config.device_index,
        job.index,
        job.memory_index,
        job.axis,
        facet_index=job.locked_sm_index,
    )
    machine = payload.blueprint.build(seed=seed, start_time=payload.epoch)
    if skeleton is not None:
        for device in machine.devices:
            key = (device.spec.architecture, device.unit_seed)
            device.latency_model.use_shared_cache(
                skeleton.setdefault(key, {})
            )
            # Memory pair models live in their own cache: SM and memory
            # pairs can share numerically identical frequency keys.
            device.mem_latency_model.use_shared_cache(
                skeleton.setdefault(key + ("memory",), {})
            )
    return machine, BenchContext(machine, payload.config)


def run_pair_batch(
    jobs: list[PairJob],
    payload: CampaignPayload,
    skeleton: dict | None = None,
) -> list[PairJobResult]:
    """Execute a facet-homogeneous chunk of jobs in SoA lockstep.

    Each job still gets its own replica machine with its own per-pair
    seed stream — identical to :func:`run_pair_job` — but the measurement
    loops advance in lockstep through
    :func:`repro.core.pairbatch.measure_pair_batch`, sharing one
    cross-pair evaluation sweep per round.  Jobs whose facet clock cannot
    be reached become skipped results without joining the batch.
    """
    from repro.core.pairbatch import measure_pair_batch

    results: list[PairJobResult] = []
    items = []
    batched = []
    for job in jobs:
        machine, bench = _build_job_replica(job, payload, skeleton)
        t0 = machine.clock.now
        if not bench.prepare_facet_clock(job.facet):
            pair = PairResult(
                init_mhz=float(job.init_mhz),
                target_mhz=float(job.target_mhz),
                skipped=True,
                skip_reason=bench.axis.facet_fail_reason,
                axis=job.axis,
            )
            pair.memory_mhz = job.memory_mhz
            pair.locked_sm_mhz = job.locked_sm_mhz
            results.append(
                PairJobResult(
                    index=job.index,
                    pair=pair,
                    elapsed_virtual_s=machine.clock.now - t0,
                )
            )
            continue
        items.append(
            (
                bench,
                job.init_mhz,
                job.target_mhz,
                payload.phase1_for(job.facet),
                payload.probe_for(job.facet),
            )
        )
        batched.append((job, machine, t0))

    if items:
        pairs = measure_pair_batch(items, payload.config.pass_block_size)
        for (job, machine, t0), pair in zip(batched, pairs):
            pair.memory_mhz = job.memory_mhz
            pair.locked_sm_mhz = job.locked_sm_mhz
            results.append(
                PairJobResult(
                    index=job.index,
                    pair=pair,
                    elapsed_virtual_s=machine.clock.now - t0,
                )
            )
    return results


def run_pair_job(
    job: PairJob,
    payload: CampaignPayload,
    skeleton: dict | None = None,
) -> PairJobResult:
    """Execute one pair job on a replica machine.

    ``skeleton`` (optional) is a process-lifetime cache of deterministic
    machine-build products shared across jobs; passing it never changes
    results, only replica construction cost.  Core×memory jobs lock and
    settle their memory P-state before measuring, against the phase-1
    characterization taken at that same clock.
    """
    machine, bench = _build_job_replica(job, payload, skeleton)
    t0 = machine.clock.now
    # The facet clock first: the locked memory P-state of a grid job, or
    # the locked SM clock of a memory-/power-axis job (a fresh replica
    # machine boots unlocked, so every worker must restore the campaign
    # facet).
    if not bench.prepare_facet_clock(job.facet):
        pair = PairResult(
            init_mhz=float(job.init_mhz),
            target_mhz=float(job.target_mhz),
            skipped=True,
            skip_reason=bench.axis.facet_fail_reason,
            axis=job.axis,
        )
    else:
        pair = measure_pair(
            bench,
            job.init_mhz,
            job.target_mhz,
            payload.phase1_for(job.facet),
            payload.probe_for(job.facet),
        )
    pair.memory_mhz = job.memory_mhz
    pair.locked_sm_mhz = job.locked_sm_mhz
    return PairJobResult(
        index=job.index,
        pair=pair,
        elapsed_virtual_s=machine.clock.now - t0,
    )


class CampaignExecutor:
    """Deterministic (optionally parallel) campaign execution.

    Parameters
    ----------
    machine:
        Campaign machine built by :func:`repro.machine.make_machine` (it
        must carry a blueprint so workers can replicate it).
    config:
        Campaign configuration; CSV output (if any) is written by the
        driver after the merge, exactly like the serial loop.
    workers:
        Process count.  ``1`` runs the job pipeline in-process; any value
        produces the identical :class:`CampaignResult`.
    pool:
        Optional :class:`repro.exec.daemon.WarmPool` of persistent worker
        daemons.  When given, jobs dispatch through it instead of a
        per-campaign ``ProcessPoolExecutor`` — the payload and skeleton
        caches then survive across campaigns.  Results are identical.
    journal:
        Optional directory for a durable
        :class:`~repro.core.journal.CampaignJournal`.  Every completed
        pair is recorded as it merges; SIGINT/SIGTERM then drain in-flight
        work, flush the journal and raise
        :class:`~repro.errors.CampaignInterrupted` instead of losing the
        campaign.
    resume:
        Reopen an existing journal (fingerprint-validated), merge its
        pairs, and measure only the rest.  The reconstructed
        :class:`CampaignResult` is bit-identical to an uninterrupted run.
    """

    def __init__(
        self,
        machine: Machine,
        config: LatestConfig,
        workers: int = 1,
        pool=None,
        journal: "str | None" = None,
        resume: bool = False,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if machine.blueprint is None:
            raise ConfigError(
                "campaign executor needs a machine built by make_machine() "
                "(hand-assembled machines carry no replication blueprint)"
            )
        if resume and journal is None:
            raise ConfigError(
                "resume=True needs the journal directory of the "
                "interrupted campaign (--journal DIR --resume)"
            )
        self.machine = machine
        self.config = config
        self.workers = workers
        self.pool = pool
        self.journal_dir = None if journal is None else str(journal)
        self.resume = bool(resume)
        #: per-facet fixed pass duration for the dispatch cost model,
        #: filled by :meth:`run` while each facet clock is prepared
        self._fixed_pass_by_facet: dict = {}

    # ------------------------------------------------------------------
    def _build_jobs(self, phase1_by_facet: dict) -> tuple[list[PairJob], dict]:
        """Valid grid points become jobs; the rest become skipped results.

        Job indices are flat positions in the facet-major campaign grid
        (``config.facet_plan()`` × ``config.pairs()``), which for legacy
        campaigns reduces to the pair's position in ``config.pairs()`` —
        the seed-stream contract of PR 1 is untouched.
        """
        axis = self.config.swept_axis()
        facet_plan = self.config.facet_plan()
        grid = self.config.memory_frequencies is not None
        sm_pairs = self.config.pairs()

        jobs: list[PairJob] = []
        pairs: dict = {}
        for facet_index, facet in enumerate(facet_plan):
            phase1 = phase1_by_facet.get(facet)
            valid = set(phase1.valid_pairs) if phase1 is not None else set()
            sm_facet = None if grid or facet is None else float(facet)
            for pair_index, (init, target) in enumerate(sm_pairs):
                sm_key = (float(init), float(target))
                key = sm_key if facet is None else sm_key + (float(facet),)
                reason = facet_skip_reason(
                    phase1, sm_key, valid, axis.facet_fail_reason
                )
                if reason is not None:
                    pairs[key] = PairResult(
                        init_mhz=sm_key[0],
                        target_mhz=sm_key[1],
                        skipped=True,
                        skip_reason=reason,
                        memory_mhz=facet if grid else None,
                        locked_sm_mhz=sm_facet,
                        axis=axis.name,
                    )
                    continue
                pairs[key] = None  # placeholder, filled by the job result
                jobs.append(
                    PairJob(
                        index=facet_index * len(sm_pairs) + pair_index,
                        init_mhz=sm_key[0],
                        target_mhz=sm_key[1],
                        memory_mhz=facet if grid else None,
                        memory_index=facet_index if grid else None,
                        axis=axis.name,
                        locked_sm_mhz=sm_facet,
                        locked_sm_index=(
                            None if sm_facet is None else facet_index
                        ),
                    )
                )
        return jobs, pairs

    def _batch_chunks(self, jobs: list[PairJob]) -> list[list[PairJob]]:
        """Facet-homogeneous job chunks of at most ``pair_batch_size``.

        Jobs arrive facet-major in index order, so chunking consecutive
        runs keeps every chunk on one facet (one phase-1/probe pairing)
        and its members in pair-index order.
        """
        size = self.config.pair_batch_size
        chunks: list[list[PairJob]] = []
        run: list[PairJob] = []
        for job in jobs:
            if run and (job.facet != run[-1].facet or len(run) >= size):
                chunks.append(run)
                run = []
            run.append(job)
        if run:
            chunks.append(run)
        return chunks

    def _execute(
        self,
        jobs: list[PairJob],
        payload: CampaignPayload,
        policy: SupervisionPolicy,
        guard: ShutdownGuard | None = None,
        on_result=None,
    ) -> list[PairJobResult]:
        """Dispatch jobs as supervised units and collect their results.

        ``on_result`` (if given) fires on the driver as each unit's
        results land — the journal/fault hook.  ``guard`` (if given) makes
        the dispatch loops drain gracefully once a shutdown signal
        arrives; the caller decides what an early return means.
        """
        if on_result is None:
            def on_result(results):  # noqa: ARG001 - deliberate no-op sink
                return None
        if not jobs:
            return []
        # The SoA lockstep tier needs the pass-block pipeline underneath
        # (its runners speculate in deferred blocks).
        batching = (
            self.config.pair_batch_size is not None
            and self.config.pass_block_size is not None
        )
        if self.pool is None and (self.workers == 1 or len(jobs) <= 1):
            units = (
                self._batch_chunks(jobs)
                if batching
                else [[job] for job in jobs]
            )
            return self._run_units_inprocess(
                units, payload, batching, policy, guard, on_result
            )

        # Straggler-aware dispatch: longest-expected pair first, so the
        # costliest job never starts last and the pool drains evenly.
        # Ordering cannot affect results (the merge is index-keyed).
        # Each facet gets the cost model built from *its own* probe
        # latencies — iteration times (and thus pair costs) respond to the
        # facet clock (the locked memory P-state of a grid, the locked SM
        # clock of a facet sweep), so ranking a k≥2-facet campaign with
        # the first facet's probes would misorder whole facets — plus the
        # facet's fixed per-pass duration, so cross-facet ordering stays
        # honest when locked-SM facets differ in iteration time.  The same
        # cost model feeds the supervision deadlines: a unit's timeout
        # scales with its expected cost.
        models: dict[float | None, ProbeCostModel] = {
            facet: ProbeCostModel(
                payload.probe_for(facet),
                fixed_pass_s=self._fixed_pass_by_facet.get(facet, 0.0),
            )
            for facet in {job.facet for job in jobs}
        }

        def job_cost(job: PairJob) -> float:
            return models[job.facet].cost(job.init_mhz, job.target_mhz)

        if batching:
            units = sorted(
                self._batch_chunks(jobs),
                key=lambda chunk: (
                    -sum(job_cost(job) for job in chunk),
                    chunk[0].index,
                ),
            )
        else:
            units = [
                [job]
                for job in sorted(
                    jobs, key=lambda job: (-job_cost(job), job.index)
                )
            ]
        costs = [sum(job_cost(job) for job in unit) for unit in units]
        if self.pool is not None:
            return self.pool.run_units(
                payload,
                units,
                batched=batching,
                policy=policy,
                costs=costs,
                guard=guard,
                on_result=on_result,
            )
        return self._run_units_pool(
            units, costs, payload, batching, policy, guard, on_result
        )

    def _run_units_inprocess(
        self, units, payload, batched, policy, guard, on_result
    ) -> list[PairJobResult]:
        """Supervised in-process execution (``workers == 1``).

        Shares the driver process, so supervision covers exceptions only:
        injected kills are downgraded to exceptions and per-unit deadlines
        cannot preempt (there is no worker to kill).  Retries and
        quarantine behave exactly like the pool path.
        """
        skeleton: dict = {}
        collected: list[PairJobResult] = []
        for unit in units:
            if guard is not None and guard.requested:
                break
            attempts = 0
            while True:
                jobs = (
                    unit
                    if attempts == 0
                    else [dc_replace(job, attempt=attempts) for job in unit]
                )
                try:
                    fire_worker_faults(jobs, payload, in_process=True)
                    if batched:
                        results = run_pair_batch(jobs, payload, skeleton)
                    else:
                        results = [
                            run_pair_job(job, payload, skeleton)
                            for job in jobs
                        ]
                except Exception as exc:
                    attempts += 1
                    if attempts > policy.max_retries:
                        results = _quarantine_results(
                            unit,
                            attempts,
                            f"worker-error: {type(exc).__name__}: {exc}",
                        )
                        break
                    time.sleep(policy.backoff_for(attempts))
                    continue
                break
            for res in results:
                res.pair.n_retries = attempts
            collected.extend(results)
            on_result(results)
        return collected

    def _run_units_pool(
        self, units, costs, payload, batched, policy, guard, on_result
    ) -> list[PairJobResult]:
        """Supervised dispatch over per-round ``ProcessPoolExecutor``s.

        Each round submits every outstanding unit with a wall-clock
        deadline derived from its expected cost.  A crashed pool
        (``BrokenProcessPool``) or an expired deadline tears the round's
        pool down and re-dispatches the survivors on a fresh one; units
        that keep failing past ``policy.max_retries`` are quarantined.
        A shutdown signal stops submissions, drains running units, and
        returns what completed.
        """
        fn = _worker_run_batch if batched else _worker_run_unit
        collected: list[PairJobResult] = []

        def complete(state: _UnitState, results) -> None:
            for res in results:
                res.pair.n_retries = state.attempts
            collected.extend(results)
            on_result(results)

        def note_failure(state: _UnitState, cause: str, retry) -> None:
            state.attempts += 1
            if state.attempts > policy.max_retries:
                complete(
                    state,
                    _quarantine_results(state.jobs, state.attempts, cause),
                )
            else:
                retry.append(state)

        todo = [_UnitState(unit, cost) for unit, cost in zip(units, costs)]
        while todo and not (guard is not None and guard.requested):
            backoff = max(
                (policy.backoff_for(state.attempts) for state in todo),
                default=0.0,
            )
            if backoff > 0.0:
                time.sleep(backoff)
            retry: list[_UnitState] = []
            requeue: list[_UnitState] = []
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(todo)),
                mp_context=mp_context(),
                initializer=_worker_init,
                initargs=(payload,),
            )
            killed = False
            try:
                future_of = {}
                for state in todo:
                    future = pool.submit(fn, state.jobs_for_attempt())
                    timeout = policy.timeout_for(state.cost)
                    state.deadline = (
                        None
                        if timeout is None
                        else time.monotonic() + timeout
                    )
                    future_of[future] = state
                remaining = set(future_of)
                while remaining:
                    done, _ = wait(
                        remaining,
                        timeout=policy.poll_s,
                        return_when=FIRST_COMPLETED,
                    )
                    broken = False
                    for future in done:
                        remaining.discard(future)
                        state = future_of[future]
                        try:
                            complete(state, future.result())
                        except BrokenProcessPool:
                            broken = True
                            note_failure(state, "worker-crash", retry)
                        except Exception as exc:
                            note_failure(
                                state,
                                f"worker-error: {type(exc).__name__}: {exc}",
                                retry,
                            )
                    if broken:
                        # The pool is dead and the executor cannot say
                        # which unit killed it: every in-flight unit takes
                        # an attempt bump (bounded collateral — see
                        # DESIGN.md) and a seat on the rebuilt pool.
                        for future in remaining:
                            state = future_of[future]
                            try:
                                complete(state, future.result(timeout=0))
                            except Exception:
                                note_failure(state, "worker-crash", retry)
                        remaining.clear()
                        break
                    now = time.monotonic()
                    expired = {
                        future
                        for future in remaining
                        if future_of[future].deadline is not None
                        and now > future_of[future].deadline
                    }
                    if expired:
                        # A unit blew its deadline (hung worker).  The
                        # pool cannot cancel a running call, so kill the
                        # whole pool; innocent bystanders requeue at their
                        # current attempt count.
                        for future in list(remaining):
                            state = future_of[future]
                            if future.done():
                                remaining.discard(future)
                                try:
                                    complete(state, future.result())
                                except Exception:
                                    note_failure(
                                        state, "worker-crash", retry
                                    )
                                continue
                            if future in expired:
                                note_failure(state, "job-timeout", retry)
                            else:
                                requeue.append(state)
                        remaining.clear()
                        _kill_pool_processes(pool)
                        killed = True
                        break
                    if guard is not None and guard.requested:
                        # Graceful drain: cancel what never started, let
                        # running units finish and collect them.
                        for future in list(remaining):
                            if future.cancel():
                                remaining.discard(future)
            finally:
                if not killed:
                    pool.shutdown(wait=True, cancel_futures=True)
            todo = retry + requeue
        return collected

    def _merge_results(
        self,
        jobs: list[PairJob],
        results: list[PairJobResult],
        pairs: dict,
    ) -> float:
        """Merge job results by index; returns the summed virtual cost.

        The merge is keyed by pair index so neither submission nor
        completion order can influence the campaign result; the returned
        total advances the driver clock so downstream consumers still see
        time passing.
        """
        results.sort(key=lambda r: r.index)
        by_index = {job.index: job for job in jobs}
        total_elapsed = 0.0
        for res in results:
            job = by_index[res.index]
            sm_key = (job.init_mhz, job.target_mhz)
            key = sm_key if job.facet is None else sm_key + (job.facet,)
            pairs[key] = res.pair
            total_elapsed += res.elapsed_virtual_s
        return total_elapsed

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        machine, config = self.machine, self.config
        journal: CampaignJournal | None = None
        loaded: dict = {}
        if self.journal_dir is not None:
            from repro.core.journal import campaign_synopsis

            fingerprint = campaign_fingerprint(config, machine.blueprint)
            journal = CampaignJournal.open(
                self.journal_dir,
                fingerprint,
                mode="engine",
                resume=self.resume,
                synopsis=campaign_synopsis(config, machine.blueprint),
            )
            if self.resume:
                loaded = journal.load()
        try:
            return self._run(journal, loaded)
        finally:
            if journal is not None:
                journal.close()

    def _run(self, journal, loaded) -> CampaignResult:
        machine, config = self.machine, self.config
        t_begin = machine.clock.now
        facet_plan = config.facet_plan()
        sm_facets = config.locked_sm_plan()

        # Phase 1 + probe: sequential by nature, same draws as the legacy
        # loop (the driver machine's clock and RNG advance identically).
        # Faceted campaigns (core×memory grids, locked-SM facet sweeps)
        # repeat the characterization once per facet on the driver machine
        # before any job is built.
        bench_driver = LatestBenchmark(machine, config)
        phase1_by_facet: dict = {}
        probe_by_facet: dict = {}
        for facet in facet_plan:
            if not bench_driver.bench.prepare_facet_clock(facet):
                continue
            phase1 = run_phase1(bench_driver.bench)
            phase1_by_facet[facet] = phase1
            probe_by_facet[facet] = (
                bench_driver._probe_windows(phase1)
                if phase1.valid_pairs
                else None
            )
            # Fixed per-pass duration at this facet (delay + confirmation
            # iterations at the facet's own iteration time): the additive
            # term the dispatch cost model needs to rank jobs *across*
            # facets.  Evaluated here because iteration_duration_s reads
            # the locked facet clock, which is prepared right now.
            self._fixed_pass_by_facet[facet] = (
                config.delay_iterations + config.confirm_iterations
            ) * bench_driver.bench.axis.iteration_duration_s(
                bench_driver.bench,
                phase1.kernel,
                max(config.frequencies),
            )
        first = facet_plan[0]
        single_facet = facet_plan == (None,)
        payload = CampaignPayload(
            blueprint=machine.blueprint,
            config=config,
            phase1=phase1_by_facet.get(first),
            probe=probe_by_facet.get(first),
            epoch=machine.clock.now,
            phase1_by_memory=None if single_facet else phase1_by_facet,
            probe_by_memory=None if single_facet else probe_by_facet,
        )

        jobs, pairs = self._build_jobs(phase1_by_facet)
        # Resume: journaled pairs merge as-is (their results are the only
        # ones those grid indices can ever produce — see the journal
        # module docs); only the remainder is dispatched.
        todo = (
            jobs
            if not loaded
            else [job for job in jobs if job.index not in loaded]
        )
        driver_plan = FaultPlan.parse(config.inject_faults)
        policy = SupervisionPolicy.from_config(config)
        supervised = journal is not None or driver_plan is not None
        merged_count = len(loaded)

        def on_result(unit_results) -> None:
            nonlocal merged_count
            for res in unit_results:
                if journal is not None:
                    journal.append(res.index, res.pair, res.elapsed_virtual_s)
            merged_count += len(unit_results)
            if driver_plan is not None:
                driver_plan.fire_driver(merged_count)

        guard = ShutdownGuard() if supervised else None
        with ExitStack() as stack:
            if guard is not None:
                stack.enter_context(guard)
            results = self._execute(
                todo, payload, policy, guard=guard, on_result=on_result
            )
        results.extend(
            PairJobResult(index=index, pair=pair, elapsed_virtual_s=elapsed)
            for index, (pair, elapsed) in loaded.items()
        )
        if guard is not None and guard.requested:
            hint = (
                f"journal at {self.journal_dir} holds every finished pair; "
                "rerun with --resume to continue"
                if journal is not None
                else "no journal attached, partial results were discarded"
            )
            raise CampaignInterrupted(
                f"campaign interrupted after {merged_count} of {len(jobs)} "
                f"measured pairs; {hint}",
                journal_dir=self.journal_dir,
            )
        total_elapsed = self._merge_results(jobs, results, pairs)
        if total_elapsed > 0.0:
            machine.clock.advance(total_elapsed)

        result = CampaignResult(
            gpu_name=bench_driver.bench.device.spec.name,
            architecture=bench_driver.bench.device.spec.architecture,
            hostname=machine.hostname,
            device_index=config.device_index,
            frequencies=config.frequencies,
            pairs=pairs,
            phase1=phase1_by_facet.get(first),
            wall_virtual_s=machine.clock.now - t_begin,
            memory_frequencies=config.memory_frequencies,
            phase1_by_memory=None if single_facet else phase1_by_facet,
            axis=config.axis,
            locked_sm_mhz=(
                None
                if sm_facets is not None
                else config.swept_axis().locked_complement_mhz(
                    bench_driver.bench
                )
            ),
            locked_sm_frequencies=sm_facets,
        )
        if config.output_dir is not None:
            write_campaign_csvs(config.output_dir, result)
        return result


def run_campaign_parallel(
    machine: Machine,
    config: LatestConfig,
    workers: int = 1,
    pool=None,
    journal: "str | None" = None,
    resume: bool = False,
) -> CampaignResult:
    """Run a campaign through the execution engine (see module docs)."""
    return CampaignExecutor(
        machine,
        config,
        workers=workers,
        pool=pool,
        journal=journal,
        resume=resume,
    ).run()
