"""The campaign executor: phase 1 once, pairs fanned out deterministically.

Execution model
---------------
Single-facet campaigns calibrate (phase 1 + probe) on the driver's
machine with exactly the same draws as the legacy serial loop — the
*driver* calibration scheme, inherently sequential (workload growth
feeds back into the kernel) and cheap.  Multi-facet campaigns
(core×memory grids, locked-SM facet sweeps) use the *replica* scheme:
each facet is calibrated on an independent replica machine rebuilt from
the blueprint with the facet's own
:func:`~repro.exec.jobs.calibration_seed_sequence` stream, making every
facet calibration a pure function of ``(blueprint, config, facet_index,
facet, start_time)`` — so cold campaigns dispatch them *in parallel*
across the process pool (or warm-pool daemons) with results provably
bit-identical to sequential execution, and warm campaigns replay them
from the persistent calibration cache
(:mod:`repro.core.calibcache`, ``--calibration-cache DIR``) without a
single phase-1 or probe pass.  The driver clock then advances by each
facet's recorded calibration time in facet order, so the campaign epoch
(and with it every pair seed stream) is identical however the
calibrations were obtained.  Every valid grid point then
becomes a :class:`~repro.exec.jobs.PairJob`: a handful of numbers (flat
grid index, SM frequencies, and — for 2-D campaigns — the memory-clock
coordinate).  All heavy shared inputs — config, blueprint, per-facet
phase-1 statistics, probe window estimates, campaign epoch — travel once
per worker process as a :class:`~repro.exec.jobs.CampaignPayload` through
the pool initializer, never inside jobs.

Workers rebuild the machine from the blueprint (same GPU spec, same unit
seed, same thermal configuration) with a seed stream derived from the
pair index, and run the unchanged :func:`repro.core.campaign.measure_pair`
loop; the worker-side entry points and replica construction live in
:mod:`repro.exec.worker` (re-exported here), including the per-process
skeleton cache that amortizes replica construction cost across jobs.

Dispatch is **straggler-aware**: jobs are submitted longest-expected-first
(``expected_pair_cost``, a cost model built from the probe latencies) and
collected as they complete, so a slow pair starts early instead of
serializing the pool tail.  Results leave the executor as
**completion-order** :class:`~repro.core.stream.PairMeasured` events on
the campaign event stream (:mod:`repro.core.stream`), each carrying its
flat grid index; because jobs share no mutable state and every stream
consumer — the :class:`~repro.core.results.ResultAccumulator` that
assembles the :class:`CampaignResult`, the journal, incremental CSV
output — keys on that index, the result (per-pair measurements, outlier
labels, CSV bytes) is bit-identical for every worker count and
submission order; scheduling only changes wall-clock time.

``workers == 1`` executes the jobs in-process (no pool, no pickling) but
through the same job pipeline, so it reproduces ``workers == N`` exactly.
The legacy single-timeline semantics remain available through
``run_campaign(machine, config)`` with ``workers=None``.

Process pools use the ``fork`` start method where available (Linux) so
workers inherit the loaded modules; ``spawn`` elsewhere.

Fault tolerance
---------------
Dispatch is **supervised** (:class:`~repro.exec.jobs.SupervisionPolicy`,
with the generic retry/deadline/quarantine loops living in
:mod:`repro.exec.supervise`): a unit (one job, or one SoA chunk) that
crashes its worker, times out against its cost-model-derived deadline, or
fails result transport is retried on a rebuilt pool with exponential
backoff — announced as a :class:`~repro.core.stream.PairRetried` event —
and because replica seed streams derive only from grid indices, a retry
is *bit-identical* to an undisturbed run.  A unit that keeps failing past
``config.max_job_retries`` is quarantined: its pairs become recorded skip
reasons (the same skip machinery phase 1 uses) instead of aborting the
campaign.  With a journal attached
(:class:`~repro.core.journal.CampaignJournal`, subscribed as a
:class:`~repro.core.journal.JournalSink`), every completed pair is
durably recorded the moment its event is dispatched, SIGINT/SIGTERM
drain in-flight units and raise
:class:`~repro.errors.CampaignInterrupted`, and ``resume=True``
validates the campaign fingerprint, replays the journaled pairs as
synthetic stream events, and measures only the rest — reconstructing the
identical :class:`CampaignResult`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field

from repro.core.calibcache import (
    CalibrationCache,
    FacetCalibration,
    calibration_fingerprint,
    record_run_stats,
)
from repro.core.campaign import LatestBenchmark, facet_skip_reason
from repro.core.journal import (
    CampaignJournal,
    JournalSink,
    ShutdownGuard,
    campaign_fingerprint,
    replay_events,
)
from repro.core.phase1 import run_phase1
from repro.core.config import LatestConfig
from repro.core.csvio import write_campaign_csvs
from repro.core.results import CampaignResult, PairResult, ResultAccumulator
from repro.core.stream import (
    CampaignFinished,
    CampaignStarted,
    FacetPrepared,
    PairMeasured,
    PairRetried,
    PairSkipped,
    StreamDispatcher,
)
from repro.errors import CampaignInterrupted, ConfigError
from repro.exec.faults import FaultPlan
from repro.exec.jobs import (
    CalibrationJob,
    CalibrationPlan,
    CampaignPayload,
    PairJob,
    PairJobResult,
    ProbeCostModel,
    SupervisionPolicy,
)
from repro.exec.supervise import (
    mp_context,
    run_units_inprocess,
    run_units_pool,
)
from repro.exec.worker import (
    calibrate_facet,
    fire_worker_faults,
    run_pair_batch,
    run_pair_job,
    worker_calibrate,
    worker_init,
    worker_run_batch,
    worker_run_unit,
)
from repro.machine import Machine

__all__ = [
    "CampaignExecutor",
    "PreparedCampaign",
    "fire_worker_faults",
    "mp_context",
    "run_campaign_parallel",
    "run_pair_batch",
    "run_pair_job",
]


@dataclass
class PreparedCampaign:
    """Everything :meth:`CampaignExecutor.prepare` settles before dispatch.

    The carrier of the prepare → dispatch → finish seam: ``prepare``
    emits the campaign-start events, calibrates every facet, and plans
    the job grid; any dispatcher — the executor's own :meth:`_execute`
    loop or an external one such as the asyncio service tier
    (:mod:`repro.service`) — then measures ``todo`` however it likes,
    records each result's virtual cost in :attr:`elapsed_by_index`, and
    hands the carrier to :meth:`CampaignExecutor.finish` to close the
    timeline and assemble the result.  Because the clock advance in
    ``finish`` sums costs in grid-index order, the result is
    bit-identical for every dispatch interleaving.
    """

    #: per-worker shared inputs (blueprint, config, calibrations, epoch)
    payload: CampaignPayload
    #: every valid grid point, facet-major index order
    jobs: list
    #: planned driver-side skips, already emitted as ``PairSkipped``
    skips: list
    #: the jobs still to measure (``jobs`` minus journal replays)
    todo: list
    #: per-index virtual cost; prefilled with replayed pairs, grown by
    #: the dispatcher, summed in index order by ``finish``
    elapsed_by_index: dict = field(default_factory=dict)
    #: driver clock at campaign start (wall-virtual origin)
    t_begin: float = 0.0
    #: the campaign's locked-SM facet plan (``None`` when single-facet)
    sm_facets: tuple = None
    #: the driver-side benchmark (axis observables for ``finish``)
    bench_driver: object = None
    #: journaled pairs replayed before live dispatch
    n_loaded: int = 0


class CampaignExecutor:
    """Deterministic (optionally parallel) campaign execution.

    Parameters
    ----------
    machine:
        Campaign machine built by :func:`repro.machine.make_machine` (it
        must carry a blueprint so workers can replicate it).
    config:
        Campaign configuration; CSV output (if any) is written by the
        driver after the merge, exactly like the serial loop.
    workers:
        Process count.  ``1`` runs the job pipeline in-process; any value
        produces the identical :class:`CampaignResult`.
    pool:
        Optional :class:`repro.exec.daemon.WarmPool` of persistent worker
        daemons.  When given, jobs dispatch through it instead of a
        per-campaign ``ProcessPoolExecutor`` — the payload and skeleton
        caches then survive across campaigns.  Results are identical.
    journal:
        Optional directory for a durable
        :class:`~repro.core.journal.CampaignJournal`.  Every completed
        pair is recorded as it merges; SIGINT/SIGTERM then drain in-flight
        work, flush the journal and raise
        :class:`~repro.errors.CampaignInterrupted` instead of losing the
        campaign.
    resume:
        Reopen an existing journal (fingerprint-validated), replay its
        pairs, and measure only the rest.  The reconstructed
        :class:`CampaignResult` is bit-identical to an uninterrupted run.
    sinks:
        Extra :class:`~repro.core.stream.CampaignSink` consumers attached
        to the campaign event stream (:mod:`repro.core.stream`).  The
        engine emits ``PairMeasured`` events in *completion order*; each
        carries its flat grid index, so index-keyed sinks reorder
        deterministically (the result accumulator and the journal both
        do).
    """

    def __init__(
        self,
        machine: Machine,
        config: LatestConfig,
        workers: int = 1,
        pool=None,
        journal: "str | None" = None,
        resume: bool = False,
        sinks=(),
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if machine.blueprint is None:
            raise ConfigError(
                "campaign executor needs a machine built by make_machine() "
                "(hand-assembled machines carry no replication blueprint)"
            )
        if resume and journal is None:
            raise ConfigError(
                "resume=True needs the journal directory of the "
                "interrupted campaign (--journal DIR --resume)"
            )
        self.machine = machine
        self.config = config
        self.workers = workers
        self.pool = pool
        self.journal_dir = None if journal is None else str(journal)
        self.resume = bool(resume)
        self.sinks = tuple(sinks)
        #: per-facet fixed pass duration for the dispatch cost model,
        #: filled by :meth:`_calibrate_facets` from each facet's
        #: calibration record
        self._fixed_pass_by_facet: dict = {}
        #: hit/miss/install counters of the calibration cache consulted
        #: by the last :meth:`run` (``None`` when no cache was attached)
        self.calibration_cache_stats: dict | None = None

    # ------------------------------------------------------------------
    def _build_jobs(
        self, phase1_by_facet: dict
    ) -> tuple[list[PairJob], list[tuple[int, PairResult]]]:
        """Valid grid points become jobs; the rest become planned skips.

        Job indices are flat positions in the facet-major campaign grid
        (``config.facet_plan()`` × ``config.pairs()``), which for legacy
        campaigns reduces to the pair's position in ``config.pairs()`` —
        the seed-stream contract of PR 1 is untouched.  Skips come back
        as ``(index, PairResult)`` in grid order, ready to emit as
        :class:`~repro.core.stream.PairSkipped` events.
        """
        axis = self.config.swept_axis()
        facet_plan = self.config.facet_plan()
        grid = self.config.memory_frequencies is not None
        sm_pairs = self.config.pairs()

        jobs: list[PairJob] = []
        skips: list[tuple[int, PairResult]] = []
        for facet_index, facet in enumerate(facet_plan):
            phase1 = phase1_by_facet.get(facet)
            valid = set(phase1.valid_pairs) if phase1 is not None else set()
            sm_facet = None if grid or facet is None else float(facet)
            for pair_index, (init, target) in enumerate(sm_pairs):
                sm_key = (float(init), float(target))
                index = facet_index * len(sm_pairs) + pair_index
                reason = facet_skip_reason(
                    phase1, sm_key, valid, axis.facet_fail_reason
                )
                if reason is not None:
                    skips.append(
                        (
                            index,
                            PairResult(
                                init_mhz=sm_key[0],
                                target_mhz=sm_key[1],
                                skipped=True,
                                skip_reason=reason,
                                memory_mhz=facet if grid else None,
                                locked_sm_mhz=sm_facet,
                                axis=axis.name,
                            ),
                        )
                    )
                    continue
                jobs.append(
                    PairJob(
                        index=index,
                        init_mhz=sm_key[0],
                        target_mhz=sm_key[1],
                        memory_mhz=facet if grid else None,
                        memory_index=facet_index if grid else None,
                        axis=axis.name,
                        locked_sm_mhz=sm_facet,
                        locked_sm_index=(
                            None if sm_facet is None else facet_index
                        ),
                    )
                )
        return jobs, skips

    def _batch_chunks(self, jobs: list[PairJob]) -> list[list[PairJob]]:
        """Facet-homogeneous job chunks of at most ``pair_batch_size``.

        Jobs arrive facet-major in index order, so chunking consecutive
        runs keeps every chunk on one facet (one phase-1/probe pairing)
        and its members in pair-index order.
        """
        size = self.config.pair_batch_size
        chunks: list[list[PairJob]] = []
        run: list[PairJob] = []
        for job in jobs:
            if run and (job.facet != run[-1].facet or len(run) >= size):
                chunks.append(run)
                run = []
            run.append(job)
        if run:
            chunks.append(run)
        return chunks

    def _calibrate_on_driver(
        self, bench_driver, facet_index: int, facet
    ) -> FacetCalibration:
        """Driver-scheme calibration: same machine, same draws as serial.

        Single-facet campaigns calibrate on the campaign machine itself so
        the driver's clock and RNG advance exactly as in the legacy serial
        loop (the pinned golden hashes depend on it).  The operation order
        — facet clock, phase 1, probe, fixed-pass evaluation — matches
        :func:`repro.exec.worker.calibrate_facet` so both schemes produce
        the same :class:`~repro.core.calibcache.FacetCalibration` shape.
        """
        machine, config = self.machine, self.config
        bench = bench_driver.bench
        t0 = machine.clock.now
        if not bench.prepare_facet_clock(facet):
            return FacetCalibration(
                facet_index=facet_index,
                facet=facet,
                prepared=False,
                phase1=None,
                probe=None,
                fixed_pass_s=0.0,
                elapsed_virtual_s=machine.clock.now - t0,
            )
        phase1 = run_phase1(bench)
        probe = (
            bench_driver._probe_windows(phase1)
            if phase1.valid_pairs
            else None
        )
        # Fixed per-pass duration at this facet (delay + confirmation
        # iterations at the facet's own iteration time): the additive
        # term the dispatch cost model needs to rank jobs *across*
        # facets.  Evaluated here because iteration_duration_s reads
        # the locked facet clock, which is prepared right now.
        fixed_pass_s = (
            config.delay_iterations + config.confirm_iterations
        ) * bench.axis.iteration_duration_s(
            bench, phase1.kernel, max(config.frequencies)
        )
        return FacetCalibration(
            facet_index=facet_index,
            facet=facet,
            prepared=True,
            phase1=phase1,
            probe=probe,
            fixed_pass_s=fixed_pass_s,
            elapsed_virtual_s=machine.clock.now - t0,
        )

    def _run_facet_calibrations(
        self, todo: list, t_begin: float
    ) -> list[FacetCalibration]:
        """Run replica-scheme calibrations, in parallel when possible.

        Each entry of ``todo`` is ``(facet_index, facet)``.  Because every
        replica calibration is a pure function of its arguments, the three
        dispatch paths — in-process loop, per-campaign process pool, warm
        daemon pool — are interchangeable: results are bit-identical, only
        wall-clock time differs.
        """
        if not todo:
            return []
        config = self.config
        blueprint = self.machine.blueprint
        if self.pool is not None:
            return self.pool.run_calibrations(
                CalibrationPlan(
                    blueprint=blueprint, config=config, start_time=t_begin
                ),
                [
                    CalibrationJob(facet_index=i, facet=facet)
                    for i, facet in todo
                ],
            )
        args = [
            (blueprint, config, i, facet, t_begin) for i, facet in todo
        ]
        if self.workers == 1 or len(args) <= 1:
            return [calibrate_facet(*a) for a in args]
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(args)),
            mp_context=mp_context(),
        ) as pool:
            return list(pool.map(worker_calibrate, args))

    def _calibrate_facets(
        self, bench_driver, dispatch: StreamDispatcher, fresh: bool
    ) -> tuple[dict, dict]:
        """Calibrate every facet and emit its ``FacetPrepared`` event.

        Two schemes (see the module docs): single-facet campaigns
        calibrate on the driver machine (``"driver"``), multi-facet
        campaigns on per-facet replica machines (``"replica"``) — the
        latter in parallel when workers allow.  When the config names a
        calibration cache and the machine sits at its blueprint start
        time (a fresh build, not a reused machine mid-timeline), each
        facet's calibration is first looked up by its content fingerprint
        and, on a miss, installed after measuring; on a hit the driver
        clock replays the recorded calibration time, so the campaign
        epoch — and every result byte — matches the cold run exactly.
        ``fresh`` is that start-of-timeline eligibility, decided by the
        caller *before* driver-bench construction (which itself advances
        the clock deterministically).

        Returns ``(phase1_by_facet, probe_by_facet)`` and fills
        ``self._fixed_pass_by_facet`` for the dispatch cost model.
        """
        machine, config = self.machine, self.config
        facet_plan = config.facet_plan()
        scheme = "driver" if facet_plan == (None,) else "replica"
        cache = None
        if config.calibration_cache is not None and fresh:
            cache = CalibrationCache(config.calibration_cache)
        keys: dict[int, str] = {}
        calibrations: dict[int, FacetCalibration] = {}
        hits: set[int] = set()
        if cache is not None:
            for facet_index, facet in enumerate(facet_plan):
                keys[facet_index] = calibration_fingerprint(
                    config, machine.blueprint, facet_index, facet, scheme
                )
                entry = cache.get(keys[facet_index])
                if entry is not None:
                    calibrations[facet_index] = entry
                    hits.add(facet_index)
        if scheme == "driver":
            cal = calibrations.get(0)
            if cal is not None:
                # Warm run: the cached calibration consumed exactly this
                # much virtual time on the cold run.  The driver RNG is
                # not drawn from after calibration in engine mode, so
                # replaying the clock advance alone reproduces the
                # campaign epoch — and with it every pair seed stream —
                # bit-identically.
                machine.clock.advance(cal.elapsed_virtual_s)
            else:
                cal = self._calibrate_on_driver(
                    bench_driver, 0, facet_plan[0]
                )
                calibrations[0] = cal
                if cache is not None:
                    cache.install(keys[0], cal)
        else:
            t_begin = machine.clock.now
            todo = [
                (i, facet)
                for i, facet in enumerate(facet_plan)
                if i not in calibrations
            ]
            for cal in self._run_facet_calibrations(todo, t_begin):
                calibrations[cal.facet_index] = cal
                if cache is not None:
                    cache.install(keys[cal.facet_index], cal)
            # Replica-scheme epoch: the driver clock advances by every
            # facet's calibration time in facet order — the same total
            # whether the calibrations ran sequentially, in parallel, or
            # came from the cache.
            for facet_index in range(len(facet_plan)):
                machine.clock.advance(
                    calibrations[facet_index].elapsed_virtual_s
                )
        if cache is not None:
            record_run_stats(cache.stats)
            self.calibration_cache_stats = dict(cache.stats)
        phase1_by_facet: dict = {}
        probe_by_facet: dict = {}
        for facet_index, facet in enumerate(facet_plan):
            cal = calibrations[facet_index]
            if not cal.prepared:
                dispatch.emit(
                    FacetPrepared(
                        facet_index=facet_index,
                        facet=facet,
                        prepared=False,
                        cache_hit=facet_index in hits,
                    )
                )
                continue
            phase1_by_facet[facet] = cal.phase1
            probe_by_facet[facet] = cal.probe
            self._fixed_pass_by_facet[facet] = cal.fixed_pass_s
            dispatch.emit(
                FacetPrepared(
                    facet_index=facet_index,
                    facet=facet,
                    prepared=True,
                    phase1=cal.phase1,
                    probe=cal.probe,
                    cache_hit=facet_index in hits,
                )
            )
        return phase1_by_facet, probe_by_facet

    def _execute(
        self,
        jobs: list[PairJob],
        payload: CampaignPayload,
        policy: SupervisionPolicy,
        guard: ShutdownGuard | None = None,
        on_result=None,
        on_retry=None,
    ) -> list[PairJobResult]:
        """Dispatch jobs as supervised units and collect their results.

        ``on_result`` (if given) fires on the driver as each unit's
        results land — the stream/fault hook.  ``on_retry`` fires when a
        failed unit is about to re-dispatch (the ``PairRetried`` feed).
        ``guard`` (if given) makes the dispatch loops drain gracefully
        once a shutdown signal arrives; the caller decides what an early
        return means.
        """
        if on_result is None:
            def on_result(results):  # noqa: ARG001 - deliberate no-op sink
                return None
        if not jobs:
            return []
        # The SoA lockstep tier needs the pass-block pipeline underneath
        # (its runners speculate in deferred blocks).
        batching = (
            self.config.pair_batch_size is not None
            and self.config.pass_block_size is not None
        )
        if self.pool is None and (self.workers == 1 or len(jobs) <= 1):
            units = (
                self._batch_chunks(jobs)
                if batching
                else [[job] for job in jobs]
            )
            skeleton: dict = {}

            def measure(unit_jobs):
                fire_worker_faults(unit_jobs, payload, in_process=True)
                if batching:
                    return run_pair_batch(unit_jobs, payload, skeleton)
                return [
                    run_pair_job(job, payload, skeleton)
                    for job in unit_jobs
                ]

            return run_units_inprocess(
                units, policy, guard, on_result, measure, on_retry=on_retry
            )

        # Straggler-aware dispatch: longest-expected pair first, so the
        # costliest job never starts last and the pool drains evenly.
        # Ordering cannot affect results (the merge is index-keyed).
        # Each facet gets the cost model built from *its own* probe
        # latencies — iteration times (and thus pair costs) respond to the
        # facet clock (the locked memory P-state of a grid, the locked SM
        # clock of a facet sweep), so ranking a k≥2-facet campaign with
        # the first facet's probes would misorder whole facets — plus the
        # facet's fixed per-pass duration, so cross-facet ordering stays
        # honest when locked-SM facets differ in iteration time.  The same
        # cost model feeds the supervision deadlines: a unit's timeout
        # scales with its expected cost.
        models: dict[float | None, ProbeCostModel] = {
            facet: ProbeCostModel(
                payload.probe_for(facet),
                fixed_pass_s=self._fixed_pass_by_facet.get(facet, 0.0),
            )
            for facet in {job.facet for job in jobs}
        }

        def job_cost(job: PairJob) -> float:
            return models[job.facet].cost(job.init_mhz, job.target_mhz)

        if batching:
            units = sorted(
                self._batch_chunks(jobs),
                key=lambda chunk: (
                    -sum(job_cost(job) for job in chunk),
                    chunk[0].index,
                ),
            )
        else:
            units = [
                [job]
                for job in sorted(
                    jobs, key=lambda job: (-job_cost(job), job.index)
                )
            ]
        costs = [sum(job_cost(job) for job in unit) for unit in units]
        if self.pool is not None:
            return self.pool.run_units(
                payload,
                units,
                batched=batching,
                policy=policy,
                costs=costs,
                guard=guard,
                on_result=on_result,
                on_retry=on_retry,
            )
        return run_units_pool(
            units,
            costs,
            policy,
            guard,
            on_result,
            workers=self.workers,
            fn=worker_run_batch if batching else worker_run_unit,
            initializer=worker_init,
            initargs=(payload,),
            on_retry=on_retry,
        )

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        machine, config = self.machine, self.config
        journal: CampaignJournal | None = None
        loaded: dict = {}
        if self.journal_dir is not None:
            from repro.core.journal import campaign_synopsis

            fingerprint = campaign_fingerprint(config, machine.blueprint)
            journal = CampaignJournal.open(
                self.journal_dir,
                fingerprint,
                mode="engine",
                resume=self.resume,
                synopsis=campaign_synopsis(config, machine.blueprint),
            )
            if self.resume:
                loaded = journal.load()
        try:
            return self._run(journal, loaded)
        finally:
            if journal is not None:
                journal.close()

    def prepare(self, dispatch: StreamDispatcher, loaded=None) -> PreparedCampaign:
        """Calibrate, plan the grid, and emit every pre-dispatch event.

        The first stage of the prepare → dispatch → finish seam (see
        :class:`PreparedCampaign`): emits ``CampaignStarted``, runs the
        per-facet calibrations (``FacetPrepared``), plans the job grid
        (``PairSkipped`` for planned skips), replays journaled pairs
        (``loaded``) as synthetic events, and returns the carrier with
        the ``todo`` jobs an external dispatcher measures.
        """
        loaded = {} if loaded is None else loaded
        machine, config = self.machine, self.config
        t_begin = machine.clock.now
        facet_plan = config.facet_plan()
        sm_facets = config.locked_sm_plan()

        bench_driver = LatestBenchmark(machine, config)
        dispatch.emit(
            CampaignStarted(
                gpu_name=bench_driver.bench.device.spec.name,
                architecture=bench_driver.bench.device.spec.architecture,
                hostname=machine.hostname,
                device_index=config.device_index,
                frequencies=config.frequencies,
                axis=config.axis,
                facet_plan=facet_plan,
                n_pairs=len(config.pairs()),
                memory_frequencies=config.memory_frequencies,
                locked_sm_frequencies=sm_facets,
                mode="engine",
                resumed=bool(loaded),
            )
        )

        # Calibration (phase 1 + probe, per facet): the driver scheme for
        # single-facet campaigns (same machine, same draws as the legacy
        # serial loop), the replica scheme — parallelizable, cacheable —
        # for multi-facet campaigns.  See _calibrate_facets.
        # Cache eligibility is decided against the pre-bench clock: a
        # machine sitting at its blueprint start time is a fresh build
        # whose whole timeline is a pure function of (blueprint, config);
        # a reused machine mid-timeline (device sweeps) is not, so it
        # calibrates live.
        phase1_by_facet, probe_by_facet = self._calibrate_facets(
            bench_driver,
            dispatch,
            fresh=(t_begin == machine.blueprint.start_time),
        )
        first = facet_plan[0]
        single_facet = facet_plan == (None,)
        payload = CampaignPayload(
            blueprint=machine.blueprint,
            config=config,
            phase1=phase1_by_facet.get(first),
            probe=probe_by_facet.get(first),
            epoch=machine.clock.now,
            phase1_by_memory=None if single_facet else phase1_by_facet,
            probe_by_memory=None if single_facet else probe_by_facet,
        )

        jobs, skips = self._build_jobs(phase1_by_facet)
        for index, pair in skips:
            dispatch.emit(PairSkipped(index=index, pair=pair))
        # Resume: journaled pairs replay as synthetic events before any
        # live measurement (their results are the only ones those grid
        # indices can ever produce — see the journal module docs); only
        # the remainder is dispatched.
        dispatch.emit_all(replay_events(loaded))
        todo = (
            jobs
            if not loaded
            else [job for job in jobs if job.index not in loaded]
        )
        # Per-index virtual cost, summed in index order by finish() so
        # the driver clock advance is bit-identical at any completion
        # order.  Prefilled with the replayed pairs.
        elapsed_by_index: dict[int, float] = {
            index: elapsed for index, (_, elapsed) in loaded.items()
        }
        return PreparedCampaign(
            payload=payload,
            jobs=jobs,
            skips=skips,
            todo=todo,
            elapsed_by_index=elapsed_by_index,
            t_begin=t_begin,
            sm_facets=sm_facets,
            bench_driver=bench_driver,
            n_loaded=len(loaded),
        )

    def job_cost(self, payload: CampaignPayload):
        """Expected-cost callable over this campaign's jobs.

        Built from each facet's own probe latencies plus its fixed
        per-pass duration (filled by :meth:`_calibrate_facets`) — the
        same model :meth:`_execute` ranks jobs with.  Exposed so
        external dispatchers (the service tier) can size shards and
        scheduler quanta consistently with engine dispatch.
        """
        models: dict = {}

        def cost(job: PairJob) -> float:
            model = models.get(job.facet)
            if model is None:
                model = models[job.facet] = ProbeCostModel(
                    payload.probe_for(job.facet),
                    fixed_pass_s=self._fixed_pass_by_facet.get(
                        job.facet, 0.0
                    ),
                )
            return model.cost(job.init_mhz, job.target_mhz)

        return cost

    def finish(
        self,
        prep: PreparedCampaign,
        dispatch: StreamDispatcher,
        accumulator: ResultAccumulator,
    ) -> CampaignResult:
        """Close the timeline and assemble the result (last seam stage).

        Sums every measured pair's virtual cost in grid-index order,
        advances the driver clock once, emits ``CampaignFinished``, and
        assembles the :class:`CampaignResult` from the accumulator —
        writing CSVs when the config asks for them.
        """
        machine, config = self.machine, self.config
        total_elapsed = 0.0
        for index in sorted(prep.elapsed_by_index):
            total_elapsed += prep.elapsed_by_index[index]
        if total_elapsed > 0.0:
            machine.clock.advance(total_elapsed)

        dispatch.emit(
            CampaignFinished(
                wall_virtual_s=machine.clock.now - prep.t_begin,
                locked_sm_mhz=(
                    None
                    if prep.sm_facets is not None
                    else config.swept_axis().locked_complement_mhz(
                        prep.bench_driver.bench
                    )
                ),
            )
        )
        result = accumulator.result()
        if config.output_dir is not None:
            write_campaign_csvs(config.output_dir, result)
        return result

    def _run(self, journal, loaded) -> CampaignResult:
        config = self.config
        accumulator = ResultAccumulator()
        dispatch = StreamDispatcher(
            accumulator,
            JournalSink(journal) if journal is not None else None,
            *self.sinks,
        )
        prep = self.prepare(dispatch, loaded)
        driver_plan = FaultPlan.parse(config.inject_faults)
        policy = SupervisionPolicy.from_config(config)
        supervised = journal is not None or driver_plan is not None
        merged_count = prep.n_loaded
        elapsed_by_index = prep.elapsed_by_index

        def on_result(unit_results) -> None:
            nonlocal merged_count
            for res in unit_results:
                elapsed_by_index[res.index] = res.elapsed_virtual_s
                dispatch.emit(
                    PairMeasured(
                        index=res.index,
                        pair=res.pair,
                        elapsed_virtual_s=res.elapsed_virtual_s,
                    )
                )
                merged_count += 1
                if driver_plan is not None:
                    driver_plan.fire_driver(merged_count)

        def on_retry(unit_jobs, attempts, cause) -> None:
            dispatch.emit(
                PairRetried(
                    indices=tuple(job.index for job in unit_jobs),
                    attempt=attempts,
                    cause=cause,
                )
            )

        guard = ShutdownGuard() if supervised else None
        with ExitStack() as stack:
            if guard is not None:
                stack.enter_context(guard)
            self._execute(
                prep.todo,
                prep.payload,
                policy,
                guard=guard,
                on_result=on_result,
                on_retry=on_retry,
            )
        if guard is not None and guard.requested:
            dispatch.interrupt()
            hint = (
                f"journal at {self.journal_dir} holds every finished pair; "
                "rerun with --resume to continue"
                if journal is not None
                else "no journal attached, partial results were discarded"
            )
            raise CampaignInterrupted(
                f"campaign interrupted after {merged_count} of "
                f"{len(prep.jobs)} measured pairs; {hint}",
                journal_dir=self.journal_dir,
            )
        return self.finish(prep, dispatch, accumulator)


def run_campaign_parallel(
    machine: Machine,
    config: LatestConfig,
    workers: int = 1,
    pool=None,
    journal: "str | None" = None,
    resume: bool = False,
    sinks=(),
) -> CampaignResult:
    """Run a campaign through the execution engine (see module docs)."""
    return CampaignExecutor(
        machine,
        config,
        workers=workers,
        pool=pool,
        journal=journal,
        resume=resume,
        sinks=sinks,
    ).run()
