"""The campaign executor: phase 1 once, pairs fanned out deterministically.

Execution model
---------------
Phase 1 and the probe stage run on the driver's machine with exactly the
same draws as the legacy serial loop — they are inherently sequential
(workload growth feeds back into the kernel) and cheap.  Every valid pair
then becomes a :class:`~repro.exec.jobs.PairJob`: a self-contained work
order carrying the phase-1 statistics, the probe window estimate, the
machine blueprint, a common virtual epoch, and a per-pair seed stream
derived from the campaign machine's root entropy.

Workers rebuild the machine from the blueprint (same GPU spec, same unit
seed, same thermal configuration) with the job's seed and epoch, and run
the unchanged :func:`repro.core.campaign.measure_pair` loop.  Because jobs
share no mutable state, the merged :class:`CampaignResult` — per-pair
measurements, outlier labels, CSV bytes — is bit-identical for every
worker count; the pool only changes wall-clock time.

``workers == 1`` executes the jobs in-process (no pool, no pickling) but
through the same job pipeline, so it reproduces ``workers == N`` exactly.
The legacy single-timeline semantics remain available through
``run_campaign(machine, config)`` with ``workers=None``.

Process pools use the ``fork`` start method where available (Linux) so
workers inherit the loaded modules; ``spawn`` elsewhere.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from repro.core.campaign import LatestBenchmark, measure_pair
from repro.core.phase1 import run_phase1
from repro.core.config import LatestConfig
from repro.core.context import BenchContext
from repro.core.csvio import write_campaign_csvs
from repro.core.results import CampaignResult, PairResult
from repro.errors import ConfigError
from repro.exec.jobs import PairJob, PairJobResult, pair_seed_sequence
from repro.machine import Machine

__all__ = ["CampaignExecutor", "run_campaign_parallel"]


def _mp_context():
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(method)


def run_pair_job(job: PairJob) -> PairJobResult:
    """Execute one pair job on a replica machine (worker entry point)."""
    machine = job.blueprint.build(seed=job.seed, start_time=job.epoch)
    bench = BenchContext(machine, job.config)
    t0 = machine.clock.now
    pair = measure_pair(bench, job.init_mhz, job.target_mhz, job.phase1, job.probe)
    return PairJobResult(
        index=job.index,
        pair=pair,
        elapsed_virtual_s=machine.clock.now - t0,
    )


class CampaignExecutor:
    """Deterministic (optionally parallel) campaign execution.

    Parameters
    ----------
    machine:
        Campaign machine built by :func:`repro.machine.make_machine` (it
        must carry a blueprint so workers can replicate it).
    config:
        Campaign configuration; CSV output (if any) is written by the
        driver after the merge, exactly like the serial loop.
    workers:
        Process count.  ``1`` runs the job pipeline in-process; any value
        produces the identical :class:`CampaignResult`.
    """

    def __init__(
        self, machine: Machine, config: LatestConfig, workers: int = 1
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if machine.blueprint is None:
            raise ConfigError(
                "campaign executor needs a machine built by make_machine() "
                "(hand-assembled machines carry no replication blueprint)"
            )
        self.machine = machine
        self.config = config
        self.workers = workers

    # ------------------------------------------------------------------
    def _build_jobs(self, phase1, probe, epoch) -> tuple[list[PairJob], dict]:
        """Valid pairs become jobs; invalid pairs become skipped results."""
        blueprint = self.machine.blueprint
        device_index = self.config.device_index
        valid = set(phase1.valid_pairs)

        jobs: list[PairJob] = []
        pairs: dict[tuple[float, float], PairResult | None] = {}
        for index, (init, target) in enumerate(self.config.pairs()):
            key = (float(init), float(target))
            if key not in valid:
                reason = (
                    phase1.unreachable.get(key[0])
                    or phase1.unreachable.get(key[1])
                    or "statistically-indistinguishable"
                )
                pairs[key] = PairResult(
                    init_mhz=key[0],
                    target_mhz=key[1],
                    skipped=True,
                    skip_reason=reason,
                )
                continue
            pairs[key] = None  # placeholder, filled by the job result
            jobs.append(
                PairJob(
                    index=index,
                    init_mhz=key[0],
                    target_mhz=key[1],
                    config=self.config,
                    blueprint=blueprint,
                    phase1=phase1,
                    probe=probe,
                    epoch=epoch,
                    seed=pair_seed_sequence(blueprint, device_index, index),
                )
            )
        return jobs, pairs

    def _execute(self, jobs: list[PairJob]) -> list[PairJobResult]:
        if self.workers == 1 or len(jobs) <= 1:
            return [run_pair_job(job) for job in jobs]
        n_workers = min(self.workers, len(jobs))
        with ProcessPoolExecutor(
            max_workers=n_workers, mp_context=_mp_context()
        ) as pool:
            return list(pool.map(run_pair_job, jobs))

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        machine, config = self.machine, self.config
        t_begin = machine.clock.now

        # Phase 1 + probe: sequential by nature, same draws as the legacy
        # loop (the driver machine's clock and RNG advance identically).
        bench_driver = LatestBenchmark(machine, config)
        phase1 = run_phase1(bench_driver.bench)
        probe = (
            bench_driver._probe_windows(phase1) if phase1.valid_pairs else None
        )
        epoch = machine.clock.now

        jobs, pairs = self._build_jobs(phase1, probe, epoch)
        results = self._execute(jobs)

        # Merge in pair order; advance the driver clock by the summed
        # virtual cost so downstream consumers still see time passing.
        results.sort(key=lambda r: r.index)
        total_elapsed = 0.0
        by_index = {job.index: job for job in jobs}
        for res in results:
            job = by_index[res.index]
            pairs[(job.init_mhz, job.target_mhz)] = res.pair
            total_elapsed += res.elapsed_virtual_s
        if total_elapsed > 0.0:
            machine.clock.advance(total_elapsed)

        result = CampaignResult(
            gpu_name=bench_driver.bench.device.spec.name,
            architecture=bench_driver.bench.device.spec.architecture,
            hostname=machine.hostname,
            device_index=config.device_index,
            frequencies=config.frequencies,
            pairs=pairs,
            phase1=phase1,
            wall_virtual_s=machine.clock.now - t_begin,
        )
        if config.output_dir is not None:
            write_campaign_csvs(config.output_dir, result)
        return result


def run_campaign_parallel(
    machine: Machine, config: LatestConfig, workers: int = 1
) -> CampaignResult:
    """Run a campaign through the execution engine (see module docs)."""
    return CampaignExecutor(machine, config, workers=workers).run()
