"""Worker-side measurement entry points and replica construction.

Everything in this module runs (or can run) inside a worker process:
the pool initializer installs the shared :class:`CampaignPayload` once
per process, the ``worker_run_*`` entry points measure a dispatch unit,
and :func:`build_job_replica` reconstructs a job's machine from the
campaign blueprint with its deterministic per-pair seed stream.  The
driver-side orchestration (job building, supervision wiring, stream
emission) lives in :mod:`repro.exec.engine`; keeping the worker side
separate means the code a pool initializer must import carries no
dispatch-loop baggage.

A per-process *skeleton cache* keeps the deterministic, immutable parts
of the machine build — the per-pair latency-model structures — alive
across jobs, so replica construction cost is paid once per
(architecture, unit seed) rather than once per job.  Sharing the cache
never changes results, only construction cost.
"""

from __future__ import annotations

from repro.core.calibcache import FacetCalibration
from repro.core.campaign import LatestBenchmark, measure_pair
from repro.core.context import BenchContext
from repro.core.phase1 import run_phase1
from repro.core.results import PairResult
from repro.exec.faults import fault_plan
from repro.exec.jobs import (
    CampaignPayload,
    PairJob,
    PairJobResult,
    calibration_seed_sequence,
    pair_seed_sequence,
)
from repro.machine import MachineBlueprint

__all__ = [
    "build_job_replica",
    "calibrate_facet",
    "fire_worker_faults",
    "run_pair_batch",
    "run_pair_job",
    "worker_calibrate",
    "worker_init",
    "worker_run_batch",
    "worker_run_unit",
]


#: per-process shared state installed by the pool initializer
_WORKER_PAYLOAD: CampaignPayload | None = None
#: per-process skeleton cache: (architecture, unit_seed) -> pair-model dict
_WORKER_SKELETON: dict = {}


def worker_init(payload: CampaignPayload) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload
    _WORKER_SKELETON.clear()


def fire_worker_faults(jobs, payload, in_process: bool = False) -> None:
    """Trigger any injected worker faults gating this unit's jobs.

    Lives outside :func:`run_pair_job` / :func:`run_pair_batch` so the
    measurement entry points stay pure; every dispatch front-end (pool
    worker, warm-pool daemon, in-process runner) calls it right before
    measuring.  ``in_process=True`` downgrades ``kill`` to an exception —
    the in-process runner shares the driver process, and a fault harness
    must never take down the campaign driver itself.
    """
    config = getattr(payload, "config", None)
    plan = fault_plan(getattr(config, "inject_faults", None))
    if plan is None:
        return
    for job in jobs:
        plan.fire_worker(job, in_process=in_process)


def worker_run_unit(jobs: list[PairJob]) -> list[PairJobResult]:
    """Non-batched unit entry point: each job measured independently."""
    assert _WORKER_PAYLOAD is not None, "pool initializer did not run"
    fire_worker_faults(jobs, _WORKER_PAYLOAD)
    return [
        run_pair_job(job, _WORKER_PAYLOAD, _WORKER_SKELETON) for job in jobs
    ]


def worker_run_batch(jobs: list[PairJob]) -> list[PairJobResult]:
    assert _WORKER_PAYLOAD is not None, "pool initializer did not run"
    fire_worker_faults(jobs, _WORKER_PAYLOAD)
    return run_pair_batch(jobs, _WORKER_PAYLOAD, _WORKER_SKELETON)


def build_job_replica(
    job: PairJob, payload: CampaignPayload, skeleton: dict | None
):
    """Build one job's replica machine + bench (shared by both job paths)."""
    seed = pair_seed_sequence(
        payload.blueprint,
        payload.config.device_index,
        job.index,
        job.memory_index,
        job.axis,
        facet_index=job.locked_sm_index,
    )
    machine = payload.blueprint.build(seed=seed, start_time=payload.epoch)
    if skeleton is not None:
        for device in machine.devices:
            key = (device.spec.architecture, device.unit_seed)
            device.latency_model.use_shared_cache(
                skeleton.setdefault(key, {})
            )
            # Memory pair models live in their own cache: SM and memory
            # pairs can share numerically identical frequency keys.
            device.mem_latency_model.use_shared_cache(
                skeleton.setdefault(key + ("memory",), {})
            )
    return machine, BenchContext(machine, payload.config)


def run_pair_batch(
    jobs: list[PairJob],
    payload: CampaignPayload,
    skeleton: dict | None = None,
) -> list[PairJobResult]:
    """Execute a facet-homogeneous chunk of jobs in SoA lockstep.

    Each job still gets its own replica machine with its own per-pair
    seed stream — identical to :func:`run_pair_job` — but the measurement
    loops advance in lockstep through
    :func:`repro.core.pairbatch.measure_pair_batch`, sharing one
    cross-pair evaluation sweep per round.  Jobs whose facet clock cannot
    be reached become skipped results without joining the batch.
    """
    from repro.core.pairbatch import measure_pair_batch

    results: list[PairJobResult] = []
    items = []
    batched = []
    for job in jobs:
        machine, bench = build_job_replica(job, payload, skeleton)
        t0 = machine.clock.now
        if not bench.prepare_facet_clock(job.facet):
            pair = PairResult(
                init_mhz=float(job.init_mhz),
                target_mhz=float(job.target_mhz),
                skipped=True,
                skip_reason=bench.axis.facet_fail_reason,
                axis=job.axis,
            )
            pair.memory_mhz = job.memory_mhz
            pair.locked_sm_mhz = job.locked_sm_mhz
            results.append(
                PairJobResult(
                    index=job.index,
                    pair=pair,
                    elapsed_virtual_s=machine.clock.now - t0,
                )
            )
            continue
        items.append(
            (
                bench,
                job.init_mhz,
                job.target_mhz,
                payload.phase1_for(job.facet),
                payload.probe_for(job.facet),
            )
        )
        batched.append((job, machine, t0))

    if items:
        pairs = measure_pair_batch(items, payload.config.pass_block_size)
        for (job, machine, t0), pair in zip(batched, pairs):
            pair.memory_mhz = job.memory_mhz
            pair.locked_sm_mhz = job.locked_sm_mhz
            results.append(
                PairJobResult(
                    index=job.index,
                    pair=pair,
                    elapsed_virtual_s=machine.clock.now - t0,
                )
            )
    return results


def calibrate_facet(
    blueprint: MachineBlueprint,
    config,
    facet_index: int,
    facet: float | None,
    start_time: float,
) -> FacetCalibration:
    """Run one facet's calibration on an independent replica machine.

    The replica calibration scheme of multi-facet engine campaigns: the
    machine is rebuilt from the blueprint with the facet's own
    :func:`~repro.exec.jobs.calibration_seed_sequence` stream, booted at
    the campaign's start time, and runs facet-clock preparation, phase 1
    and the probe exactly as the driver would — a pure function of
    ``(blueprint, config, facet_index, facet, start_time)``, so parallel
    dispatch, sequential execution, and cache replay are all
    bit-identical.  The fixed per-pass duration for the dispatch cost
    model is evaluated here, while the facet clock is prepared, and
    travels inside the returned
    :class:`~repro.core.calibcache.FacetCalibration`.
    """
    seed = calibration_seed_sequence(
        blueprint, config.device_index, facet_index, config.axis
    )
    machine = blueprint.build(seed=seed, start_time=start_time)
    driver = LatestBenchmark(machine, config)
    bench = driver.bench
    t0 = machine.clock.now
    if not bench.prepare_facet_clock(facet):
        return FacetCalibration(
            facet_index=facet_index,
            facet=facet,
            prepared=False,
            phase1=None,
            probe=None,
            fixed_pass_s=0.0,
            elapsed_virtual_s=machine.clock.now - t0,
        )
    phase1 = run_phase1(bench)
    probe = driver._probe_windows(phase1) if phase1.valid_pairs else None
    fixed_pass_s = (
        config.delay_iterations + config.confirm_iterations
    ) * bench.axis.iteration_duration_s(
        bench, phase1.kernel, max(config.frequencies)
    )
    return FacetCalibration(
        facet_index=facet_index,
        facet=facet,
        prepared=True,
        phase1=phase1,
        probe=probe,
        fixed_pass_s=fixed_pass_s,
        elapsed_virtual_s=machine.clock.now - t0,
    )


def worker_calibrate(args: tuple) -> FacetCalibration:
    """Process-pool entry point for :func:`calibrate_facet`.

    ``args`` is the ``(blueprint, config, facet_index, facet,
    start_time)`` tuple — calibration dispatch ships its few jobs whole
    rather than through a pool initializer (a campaign has facets in the
    units, not the thousands).
    """
    return calibrate_facet(*args)


def run_pair_job(
    job: PairJob,
    payload: CampaignPayload,
    skeleton: dict | None = None,
) -> PairJobResult:
    """Execute one pair job on a replica machine.

    ``skeleton`` (optional) is a process-lifetime cache of deterministic
    machine-build products shared across jobs; passing it never changes
    results, only replica construction cost.  Core×memory jobs lock and
    settle their memory P-state before measuring, against the phase-1
    characterization taken at that same clock.
    """
    machine, bench = build_job_replica(job, payload, skeleton)
    t0 = machine.clock.now
    # The facet clock first: the locked memory P-state of a grid job, or
    # the locked SM clock of a memory-/power-axis job (a fresh replica
    # machine boots unlocked, so every worker must restore the campaign
    # facet).
    if not bench.prepare_facet_clock(job.facet):
        pair = PairResult(
            init_mhz=float(job.init_mhz),
            target_mhz=float(job.target_mhz),
            skipped=True,
            skip_reason=bench.axis.facet_fail_reason,
            axis=job.axis,
        )
    else:
        pair = measure_pair(
            bench,
            job.init_mhz,
            job.target_mhz,
            payload.phase1_for(job.facet),
            payload.probe_for(job.facet),
        )
    pair.memory_mhz = job.memory_mhz
    pair.locked_sm_mhz = job.locked_sm_mhz
    return PairJobResult(
        index=job.index,
        pair=pair,
        elapsed_virtual_s=machine.clock.now - t0,
    )
