"""Campaign execution engine: deterministic parallel pair measurement.

A campaign decomposes into independent per-pair measurement jobs once
phase 1 (characterization) and the probe stage have run: each job gets a
replica of the campaign machine built from its blueprint with a
deterministic per-pair seed stream, so results are bit-identical for any
worker count — one process or a pool.

Dispatch contract
-----------------
The shared campaign payload (config, blueprint, phase-1 statistics, probe
estimate, epoch) ships to each worker process exactly once through the
pool initializer; jobs themselves are three numbers.  Jobs are submitted
**longest-expected-pair-first** using the probe latencies as a cost model
(:class:`repro.exec.jobs.ProbeCostModel`) and collected with
``as_completed`` — straggler-aware scheduling that only affects wall
clock: results merge by pair index, so neither submission order nor
completion order can influence the :class:`CampaignResult`.  Worker
processes additionally keep a skeleton cache of deterministic
machine-build products (per-pair latency-model structures) across jobs.

::

    from repro import LatestConfig, make_machine, run_campaign

    machine = make_machine("A100", seed=42)
    result = run_campaign(machine, config, workers=4)   # == workers=1
"""

from repro.exec.daemon import WarmPool
from repro.exec.engine import (
    CampaignExecutor,
    mp_context,
    run_campaign_parallel,
    run_pair_batch,
    run_pair_job,
)
from repro.exec.jobs import (
    CampaignPayload,
    PairJob,
    PairJobResult,
    ProbeCostModel,
    pair_seed_sequence,
)
from repro.exec.shm import pack_results, unpack_results

__all__ = [
    "CampaignExecutor",
    "CampaignPayload",
    "PairJob",
    "PairJobResult",
    "ProbeCostModel",
    "WarmPool",
    "mp_context",
    "pack_results",
    "pair_seed_sequence",
    "run_campaign_parallel",
    "run_pair_batch",
    "run_pair_job",
    "unpack_results",
]
