"""Campaign execution engine: deterministic parallel pair measurement.

A campaign decomposes into independent per-pair measurement jobs once
phase 1 (characterization) and the probe stage have run: each job gets a
replica of the campaign machine built from its blueprint with a
deterministic per-pair seed stream, so results are bit-identical for any
worker count — one process or a pool.

Dispatch contract
-----------------
The shared campaign payload (config, blueprint, phase-1 statistics, probe
estimate, epoch) ships to each worker process exactly once through the
pool initializer; jobs themselves are three numbers.  Jobs are submitted
**longest-expected-pair-first** using the probe latencies as a cost model
(:class:`repro.exec.jobs.ProbeCostModel`) — straggler-aware scheduling
that only affects wall clock: results merge by pair index, so neither
submission order nor completion order can influence the
:class:`CampaignResult`.  Worker processes additionally keep a skeleton
cache of deterministic machine-build products (per-pair latency-model
structures) across jobs.

Dispatch is supervised (:class:`repro.exec.jobs.SupervisionPolicy`; the
generic retry/deadline/quarantine loops live in
:mod:`repro.exec.supervise`): crashed or hung workers are rebuilt and
their units retried — bit-identically, because seed streams derive from
grid indices alone — with persistent failures quarantined as recorded
skips.  Campaigns can journal completed pairs durably and resume after
interruption (:mod:`repro.core.journal`), every result and supervision
step is observable on the campaign event stream
(:mod:`repro.core.stream`), and every recovery path is testable under
deterministic fault injection (:mod:`repro.exec.faults`).

::

    from repro import LatestConfig, make_machine, run_campaign

    machine = make_machine("A100", seed=42)
    result = run_campaign(machine, config, workers=4)   # == workers=1
"""

from repro.exec.daemon import WarmPool
from repro.exec.engine import (
    CampaignExecutor,
    mp_context,
    run_campaign_parallel,
    run_pair_batch,
    run_pair_job,
)
from repro.exec.faults import FaultAction, FaultInjected, FaultPlan
from repro.exec.jobs import (
    CampaignPayload,
    PairJob,
    PairJobResult,
    ProbeCostModel,
    SupervisionPolicy,
    pair_seed_sequence,
)
from repro.exec.shm import cleanup_segment, pack_results, unpack_results
from repro.exec.supervise import (
    UnitState,
    quarantine_results,
    run_units_inprocess,
    run_units_pool,
)

__all__ = [
    "CampaignExecutor",
    "CampaignPayload",
    "FaultAction",
    "FaultInjected",
    "FaultPlan",
    "PairJob",
    "PairJobResult",
    "ProbeCostModel",
    "SupervisionPolicy",
    "UnitState",
    "WarmPool",
    "cleanup_segment",
    "mp_context",
    "pack_results",
    "pair_seed_sequence",
    "quarantine_results",
    "run_campaign_parallel",
    "run_pair_batch",
    "run_pair_job",
    "run_units_inprocess",
    "run_units_pool",
    "unpack_results",
]
