"""Campaign execution engine: deterministic parallel pair measurement.

A campaign decomposes into independent per-pair measurement jobs once
phase 1 (characterization) and the probe stage have run: each job gets a
replica of the campaign machine built from its blueprint with a
deterministic per-pair seed stream, so results are bit-identical for any
worker count — one process or a pool.

::

    from repro import LatestConfig, make_machine, run_campaign

    machine = make_machine("A100", seed=42)
    result = run_campaign(machine, config, workers=4)   # == workers=1
"""

from repro.exec.engine import CampaignExecutor, run_campaign_parallel
from repro.exec.jobs import PairJob, PairJobResult

__all__ = [
    "CampaignExecutor",
    "PairJob",
    "PairJobResult",
    "run_campaign_parallel",
]
