"""Job payloads shipped between the campaign driver and worker processes.

Everything here must stay picklable: jobs cross a process boundary when
the executor runs with ``workers > 1``.  The expensive shared inputs —
phase-1 characterizations and the probe window estimate — are computed
once by the driver and embedded in every job rather than recomputed per
worker.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.campaign import ProbeInfo
from repro.core.config import LatestConfig
from repro.core.phase1 import Phase1Result
from repro.core.results import PairResult
from repro.machine import MachineBlueprint

__all__ = ["PairJob", "PairJobResult", "pair_seed_sequence"]

#: spawn-key namespace for per-pair streams — far above the handful of
#: children ``make_machine`` spawns from the same root entropy, so pair
#: streams can never collide with the host/device/machine streams
_PAIR_STREAM_OFFSET = 0x5041_4952  # "PAIR"


def pair_seed_sequence(
    blueprint: MachineBlueprint, device_index: int, pair_index: int
) -> np.random.SeedSequence:
    """The deterministic seed stream of one pair job.

    Derived from the campaign machine's root entropy (and spawn key, when
    the machine itself was seeded with a spawned sequence) plus the pair's
    position in ``config.pairs()`` — independent of execution order,
    worker count, and process boundaries.
    """
    return np.random.SeedSequence(
        entropy=blueprint.entropy,
        spawn_key=blueprint.seed_spawn_key
        + (_PAIR_STREAM_OFFSET, device_index, pair_index),
    )


@dataclass(frozen=True)
class PairJob:
    """One frequency pair's measurement work order."""

    index: int
    init_mhz: float
    target_mhz: float
    config: LatestConfig
    blueprint: MachineBlueprint
    phase1: Phase1Result
    probe: ProbeInfo
    #: virtual time at which every pair machine starts (the driver clock
    #: right after phase 1 + probe) — common to all jobs so results do not
    #: depend on scheduling
    epoch: float
    seed: np.random.SeedSequence


@dataclass
class PairJobResult:
    """What a worker sends back for one pair."""

    index: int
    pair: PairResult
    #: virtual seconds the pair machine consumed (driver clock bookkeeping)
    elapsed_virtual_s: float
