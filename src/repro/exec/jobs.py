"""Job payloads shipped between the campaign driver and worker processes.

Everything here must stay picklable: payloads cross a process boundary
when the executor runs with ``workers > 1``.  The expensive shared inputs
— the campaign configuration, the machine blueprint, the phase-1
characterizations and the probe window estimate — travel **once per
worker process** inside a :class:`CampaignPayload` (via the pool
initializer), not once per job: a :class:`PairJob` is three numbers.  The
per-pair seed stream is derived inside the worker from the blueprint and
the pair index, so jobs carry no RNG state either.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.campaign import ProbeInfo
from repro.core.config import LatestConfig
from repro.core.phase1 import Phase1Result
from repro.core.results import PairResult
from repro.machine import MachineBlueprint

__all__ = [
    "CalibrationJob",
    "CalibrationPlan",
    "CampaignPayload",
    "PairJob",
    "PairJobResult",
    "ProbeCostModel",
    "SupervisionPolicy",
    "calibration_seed_sequence",
    "pair_seed_sequence",
]

#: spawn-key namespace for per-pair streams — far above the handful of
#: children ``make_machine`` spawns from the same root entropy, so pair
#: streams can never collide with the host/device/machine streams
_PAIR_STREAM_OFFSET = 0x5041_4952  # "PAIR"
#: spawn-key marker separating core×memory grid jobs from legacy pair jobs
_MEMORY_STREAM_OFFSET = 0x4D45_4D00  # "MEM\0"
#: spawn-key marker separating non-default measurement axes from the
#: (marker-free) legacy sm_core streams
_AXIS_STREAM_OFFSET = 0x4158_4953  # "AXIS"
#: spawn-key marker separating multi-facet (locked-SM) swept-axis jobs
#: from single-facet jobs of the same axis
_FACET_STREAM_OFFSET = 0x4641_4345  # "FACE"
#: spawn-key namespace of per-facet *calibration* streams (the replica
#: calibration scheme of multi-facet engine campaigns) — disjoint from
#: every pair-measurement stream by the leading marker
_CALIB_STREAM_OFFSET = 0x4341_4C42  # "CALB"


def calibration_seed_sequence(
    blueprint: MachineBlueprint,
    device_index: int,
    facet_index: int,
    axis: str = "sm_core",
) -> np.random.SeedSequence:
    """The deterministic seed stream of one facet's calibration replica.

    Multi-facet engine campaigns calibrate each facet (facet-clock
    preparation, phase 1, probe) on its own replica machine seeded from
    this stream — a pure function of the blueprint and the facet's grid
    position, independent of execution order and process boundaries, so
    parallel facet calibration is provably bit-identical to sequential
    and the result is content-addressable per facet
    (:mod:`repro.core.calibcache`).  The leading ``CALB`` marker keeps
    these streams disjoint from every :func:`pair_seed_sequence` stream.
    """
    from repro.core.axis import axis_stream_id

    key = blueprint.seed_spawn_key + (
        _CALIB_STREAM_OFFSET,
        device_index,
        axis_stream_id(axis),
        facet_index,
    )
    return np.random.SeedSequence(entropy=blueprint.entropy, spawn_key=key)


def pair_seed_sequence(
    blueprint: MachineBlueprint,
    device_index: int,
    pair_index: int,
    memory_index: int | None = None,
    axis: str = "sm_core",
    facet_index: int | None = None,
) -> np.random.SeedSequence:
    """The deterministic seed stream of one pair job.

    Derived from the campaign machine's root entropy (and spawn key, when
    the machine itself was seeded with a spawned sequence) plus the job's
    position in the campaign grid — independent of execution order, worker
    count, and process boundaries.  Legacy jobs (``memory_index=None``,
    default axis) keep the exact pre-extension spawn key; core×memory
    jobs add a marker and the memory-clock coordinate; non-default-axis
    jobs add the axis marker and the axis's registry id
    (:func:`repro.core.axis.axis_stream_id`), single-facet jobs keeping
    the exact PR-4 key and multi-facet jobs adding a facet marker plus
    the locked-SM facet's position — no stream of one kind can ever
    collide with another.
    """
    if axis != "sm_core":
        from repro.core.axis import axis_stream_id

        key = blueprint.seed_spawn_key + (
            _PAIR_STREAM_OFFSET,
            device_index,
            _AXIS_STREAM_OFFSET,
            axis_stream_id(axis),
        )
        if facet_index is not None:
            key += (_FACET_STREAM_OFFSET, facet_index)
        key += (pair_index,)
    elif memory_index is None:
        key = blueprint.seed_spawn_key + (
            _PAIR_STREAM_OFFSET, device_index, pair_index,
        )
    else:
        key = blueprint.seed_spawn_key + (
            _PAIR_STREAM_OFFSET,
            device_index,
            _MEMORY_STREAM_OFFSET,
            memory_index,
            pair_index,
        )
    return np.random.SeedSequence(entropy=blueprint.entropy, spawn_key=key)


@dataclass(frozen=True)
class CampaignPayload:
    """Per-campaign state shared by every pair job of one executor run.

    Shipped to each worker process exactly once through the pool
    initializer; the in-process path passes it by reference.  ``phase1``
    and ``probe`` are the legacy (or first-facet) inputs; core×memory
    campaigns additionally carry one phase-1/probe per memory clock.
    """

    blueprint: MachineBlueprint
    config: LatestConfig
    phase1: Phase1Result
    probe: ProbeInfo
    #: virtual time at which every pair machine starts (the driver clock
    #: right after phase 1 + probe) — common to all jobs so results do not
    #: depend on scheduling
    epoch: float
    #: per-facet phase-1 results of a faceted campaign, keyed by the facet
    #: coordinate (memory clock of a core×memory grid, locked SM clock of
    #: a multi-facet swept-axis sweep)
    phase1_by_memory: "dict | None" = None
    #: per-facet probe estimates of a faceted campaign
    probe_by_memory: "dict | None" = None

    def phase1_for(self, facet: float | None) -> Phase1Result:
        if facet is None or self.phase1_by_memory is None:
            return self.phase1
        return self.phase1_by_memory[facet]

    def probe_for(self, facet: float | None) -> ProbeInfo:
        if facet is None or self.probe_by_memory is None:
            return self.probe
        return self.probe_by_memory[facet]


@dataclass(frozen=True)
class CalibrationJob:
    """One facet's phase-1 + probe calibration work order.

    Dispatched by the engine for cold multi-facet campaigns — across the
    process pool or the warm daemons — before any :class:`PairJob`
    exists.  Like a pair job it is tiny: the heavy shared inputs
    (blueprint, config) travel once as a :class:`CalibrationPlan`.
    """

    facet_index: int
    facet: float | None


@dataclass(frozen=True)
class CalibrationPlan:
    """Shared payload of one campaign's parallel facet calibration.

    The calibration-time counterpart of :class:`CampaignPayload` (which
    cannot exist yet — it *carries* the phase-1/probe results the
    calibration produces).  ``start_time`` is the driver clock at
    campaign start; every calibration replica boots there, so results
    are independent of the order facets calibrate in.
    """

    blueprint: MachineBlueprint
    config: LatestConfig
    start_time: float


@dataclass(frozen=True)
class PairJob:
    """One grid point's measurement work order (intentionally tiny).

    ``index`` is the job's flat position in the campaign's facet-major
    grid (for legacy campaigns this equals the pair's position in
    ``config.pairs()``); the facet coordinate rides along so workers can
    lock the right P-state (``memory_mhz``, core×memory grids) or SM
    clock (``locked_sm_mhz``, multi-facet swept-axis sweeps) and derive
    the right seed stream, and ``axis`` names the swept clock domain the
    frequencies belong to.
    """

    index: int
    init_mhz: float
    target_mhz: float
    memory_mhz: float | None = None
    memory_index: int | None = None
    axis: str = "sm_core"
    locked_sm_mhz: float | None = None
    locked_sm_index: int | None = None
    #: supervision retry counter — NEVER part of the seed derivation, so
    #: a retried job reproduces its result bit for bit; fault-injection
    #: actions are attempt-gated on it (:mod:`repro.exec.faults`)
    attempt: int = 0

    @property
    def facet(self) -> float | None:
        """The job's facet coordinate, whichever kind it is."""
        return self.memory_mhz if self.memory_mhz is not None else self.locked_sm_mhz


@dataclass
class PairJobResult:
    """What a worker sends back for one pair."""

    index: int
    pair: PairResult
    #: virtual seconds the pair machine consumed (driver clock bookkeeping)
    elapsed_virtual_s: float


@dataclass(frozen=True)
class SupervisionPolicy:
    """Driver-side recovery policy for one campaign's job dispatch.

    Derived from the resilience fields of
    :class:`~repro.core.config.LatestConfig`; shared by the process-pool
    and warm-pool dispatch paths.  ``timeout_factor`` maps a unit's
    expected *virtual* cost (probe-latency cost model) to a wall-clock
    deadline; ``None`` disables deadlines.  Retries are bounded: a unit
    that fails more than ``max_retries`` times is quarantined — its pairs
    become recorded skip reasons instead of aborting the campaign.
    """

    timeout_factor: float | None = None
    timeout_floor_s: float = 5.0
    max_retries: int = 2
    backoff_s: float = 0.25
    backoff_max_s: float = 10.0
    #: result-poll tick of the supervised collect loops (also bounds
    #: shutdown-signal latency)
    poll_s: float = 0.05

    @classmethod
    def from_config(cls, config: LatestConfig) -> "SupervisionPolicy":
        return cls(
            timeout_factor=config.job_timeout_factor,
            timeout_floor_s=config.job_timeout_floor_s,
            max_retries=config.max_job_retries,
            backoff_s=config.retry_backoff_s,
            backoff_max_s=config.retry_backoff_max_s,
        )

    def timeout_for(self, cost_virtual_s: float) -> float | None:
        """Wall-clock deadline for a unit of the given expected cost."""
        if self.timeout_factor is None:
            return None
        return self.timeout_floor_s + self.timeout_factor * max(
            cost_virtual_s, 0.0
        )

    def backoff_for(self, attempts: int) -> float:
        """Exponential backoff before re-dispatching a failed unit."""
        if attempts <= 0 or self.backoff_s <= 0:
            return 0.0
        return min(self.backoff_s * 2.0 ** (attempts - 1), self.backoff_max_s)


class ProbeCostModel:
    """Deterministic pair-cost estimates for straggler-aware dispatch.

    Longer switching latencies mean longer settle phases, larger windows
    after growth, and more virtual seconds per pass, so the probe
    latencies are the natural cost model.  An exact probe match wins;
    otherwise pairs sharing a probed target frequency are averaged
    (latency depends mostly on the target band); otherwise the probe
    median scaled by the relative frequency distance stands in.  Only the
    *ordering* matters — the merge is index-keyed, so dispatch order never
    affects results.  The probe lookup tables build once per campaign,
    not once per job, so sorting a dense pair grid stays O(P log P).

    ``fixed_pass_s`` folds the facet's per-pass fixed work — the delay
    and confirmation iterations at the facet's locked-SM iteration
    duration — into every estimate.  The probe latency alone is a fine
    *within*-facet ranking but a wrong *cross*-facet one: on the memory
    and power axes a slow locked-SM facet makes every pass longer
    regardless of its switching latency, so without the additive facet
    term a multi-facet sort interleaves facets by latency and starts the
    slow facet's pairs too late.
    """

    def __init__(
        self, probe: ProbeInfo | None, fixed_pass_s: float = 0.0
    ) -> None:
        self._probe = probe
        self._fixed_pass_s = float(fixed_pass_s)
        self._by_pair: dict[tuple[float, float], float] = {}
        self._by_target: dict[float, float] = {}
        self._span = 0.0
        if probe is not None and probe.pair_latencies:
            self._by_pair = {
                (i, t): lat for i, t, lat in probe.pair_latencies
            }
            targets: dict[float, list[float]] = {}
            for (i, t), lat in self._by_pair.items():
                targets.setdefault(t, []).append(lat)
                self._span = max(self._span, abs(t - i))
            self._by_target = {
                t: float(np.mean(lats)) for t, lats in targets.items()
            }

    def cost(self, init_mhz: float, target_mhz: float) -> float:
        if not self._by_pair:
            return abs(target_mhz - init_mhz) + self._fixed_pass_s
        exact = self._by_pair.get((init_mhz, target_mhz))
        if exact is not None:
            return exact + self._fixed_pass_s
        same_target = self._by_target.get(target_mhz)
        if same_target is not None:
            return same_target + self._fixed_pass_s
        distance = abs(target_mhz - init_mhz)
        scale = distance / self._span if self._span > 0 else 1.0
        return (
            self._probe.median_latency_s * (0.5 + scale) + self._fixed_pass_s
        )


