"""Deterministic fault injection for the campaign execution engine.

The recovery machinery (worker supervision, retries, journal + resume,
shared-memory leak sweeps) is only trustworthy if every path is exercised
under *reproducible* faults.  A :class:`FaultPlan` is parsed from a spec
string (``--inject-faults``) that travels to worker processes inside the
campaign config, so driver and workers agree on exactly which job
triggers which fault — no timing, no randomness, no cross-process state.

Spec grammar
------------
Semicolon/comma-separated actions, each ``kind@index[*fires][:param]``:

``kill@K``
    The worker process running grid-index-``K``'s job calls
    ``os._exit(1)`` before measuring (a hard crash: ``BrokenProcessPool``
    on the executor path, a dead daemon on the warm pool).
``hang@K[:SECONDS]``
    The job sleeps for ``SECONDS`` real seconds (default 3600) — long
    enough that the supervisor's per-job timeout fires first.
``raise@K``
    Raises :class:`FaultInjected` inside the measurement entry point (a
    crash *inside* the measure phases that surfaces as a worker error).
``corrupt@K``
    The warm-pool worker computes index ``K``'s unit normally but mails
    back a shared-memory envelope naming a segment that does not exist,
    so the driver-side unpack fails — exercising the transport-failure
    retry and the stray-segment sweep.  (The executor path pickles
    results directly, so this action is a no-op there.)
``interrupt@N``
    Fires on the **driver** after the ``N``-th pair result has been
    merged: sends ``SIGINT`` to the driver process itself, exercising the
    real graceful-shutdown signal path (drain, journal flush,
    :class:`~repro.errors.CampaignInterrupted`).

Every worker-side action is **attempt-gated**: it fires while the job's
retry attempt is below ``fires`` (default 1 — first attempt only), so a
retried job succeeds and the test suite can assert that recovery
converges to results bit-identical to a fault-free run.  ``raise@K*99``
makes a fault effectively permanent, driving the quarantine path.

Determinism note: faults never touch the measurement state.  Replica
machines derive their streams from the grid index alone, so a job retried
after a kill/hang/raise reproduces the exact result the fault-free run
would have produced.
"""

from __future__ import annotations

import os
import re
import signal
import time
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigError

__all__ = ["FaultAction", "FaultInjected", "FaultPlan", "fault_plan"]


class FaultInjected(RuntimeError):
    """The error raised by ``raise@K`` fault actions."""


_KINDS = ("kill", "hang", "raise", "corrupt", "interrupt")

_ACTION_RE = re.compile(
    r"^(?P<kind>[a-z]+)@(?P<index>\d+)"
    r"(?:\*(?P<fires>\d+))?(?::(?P<param>[0-9.]+))?$"
)


@dataclass(frozen=True)
class FaultAction:
    """One parsed fault trigger."""

    kind: str
    index: int
    fires: int = 1
    param: float | None = None


class FaultPlan:
    """A parsed, deterministic set of fault triggers.

    Worker-side entry points call :meth:`fire_worker` /
    :meth:`should_corrupt` with the jobs they are about to run; the
    driver calls :meth:`fire_driver` with the running count of merged
    pair results.  The driver-side interrupt latch is per-plan state, so
    parse one plan per campaign run (``FaultPlan.parse``) on the driver;
    workers may share the process-cached :func:`fault_plan`.
    """

    def __init__(self, actions: tuple[FaultAction, ...]) -> None:
        self.actions = actions
        self._interrupt_fired = False

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: "str | None") -> "FaultPlan | None":
        """Parse a spec string; ``None``/empty means no faults."""
        if not spec:
            return None
        actions = []
        for token in re.split(r"[;,]", spec):
            token = token.strip()
            if not token:
                continue
            match = _ACTION_RE.match(token)
            if match is None:
                raise ConfigError(
                    f"malformed fault action {token!r} (expected "
                    "kind@index[*fires][:param], e.g. kill@3 or hang@5:30)"
                )
            kind = match["kind"]
            if kind not in _KINDS:
                raise ConfigError(
                    f"unknown fault kind {kind!r} (choose from "
                    f"{', '.join(_KINDS)})"
                )
            fires = int(match["fires"]) if match["fires"] else 1
            if fires < 1:
                raise ConfigError(f"fault fire count must be >= 1: {token!r}")
            actions.append(
                FaultAction(
                    kind=kind,
                    index=int(match["index"]),
                    fires=fires,
                    param=float(match["param"]) if match["param"] else None,
                )
            )
        if not actions:
            return None
        return cls(tuple(actions))

    # ------------------------------------------------------------------
    def _matching(self, kind: str, index: int, attempt: int):
        for action in self.actions:
            if (
                action.kind == kind
                and action.index == index
                and attempt < action.fires
            ):
                return action
        return None

    def fire_worker(self, job, in_process: bool = False) -> None:
        """Trigger kill/hang/raise actions for one job, attempt-gated.

        Called at the top of the worker measurement entry points with the
        :class:`~repro.exec.jobs.PairJob` about to run (``job.attempt``
        carries the supervisor's retry count).  ``in_process=True``
        downgrades ``kill`` to :class:`FaultInjected` — the in-process
        runner shares the driver, and injected faults must never take the
        campaign driver down with them.
        """
        attempt = getattr(job, "attempt", 0)
        if self._matching("kill", job.index, attempt) is not None:
            if in_process:
                raise FaultInjected(
                    f"injected kill at job index {job.index} "
                    f"(attempt {attempt}, downgraded in-process)"
                )
            os._exit(1)
        action = self._matching("hang", job.index, attempt)
        if action is not None:
            time.sleep(action.param if action.param is not None else 3600.0)
        action = self._matching("raise", job.index, attempt)
        if action is not None:
            raise FaultInjected(
                f"injected fault at job index {job.index} "
                f"(attempt {attempt})"
            )

    def should_corrupt(self, jobs) -> bool:
        """Whether this unit's result envelope should be corrupted."""
        return any(
            self._matching("corrupt", job.index, getattr(job, "attempt", 0))
            is not None
            for job in jobs
        )

    def fire_driver(self, merged_count: int) -> None:
        """Driver-side trigger: SIGINT once ``merged_count`` reaches N."""
        if self._interrupt_fired:
            return
        for action in self.actions:
            if action.kind == "interrupt" and merged_count >= action.index:
                self._interrupt_fired = True
                os.kill(os.getpid(), signal.SIGINT)
                return


@lru_cache(maxsize=8)
def fault_plan(spec: "str | None") -> "FaultPlan | None":
    """Process-cached plan for worker entry points (specs are tiny)."""
    return FaultPlan.parse(spec)
