"""Confidence intervals and the two-standard-deviation acceptance band.

The contrast between :func:`mean_ci` (shrinks with 1/sqrt(n)) and
:func:`two_sigma_band` (does not) is the statistical core of the paper:
with thousands of concurrent GPU threads, the confidence interval of the
mean collapses below the device timer granularity, so almost no individual
iteration can land inside it — FTaLaT's detection criterion degenerates.
The 2-sigma band instead reflects where individual execution times live
(~95 % of them for near-normal noise), which is the right question when
deciding "does this iteration already run at the target frequency?".
"""

from __future__ import annotations

import math

from scipy import stats as sps

from repro.errors import ConfigError
from repro.stats.descriptive import SampleStats

__all__ = ["mean_ci", "difference_ci", "two_sigma_band"]


def _z_or_t(confidence: float, dof: float | None) -> float:
    if not 0.0 < confidence < 1.0:
        raise ConfigError(f"confidence must be in (0, 1), got {confidence}")
    tail = 0.5 + confidence / 2.0
    if dof is None or dof > 200:
        return float(sps.norm.ppf(tail))
    return float(sps.t.ppf(tail, dof))


def mean_ci(
    stats: SampleStats, confidence: float = 0.95, use_t: bool = True
) -> tuple[float, float]:
    """Confidence interval of the sample mean."""
    if stats.n < 2:
        raise ConfigError("confidence interval needs n >= 2")
    crit = _z_or_t(confidence, stats.n - 1 if use_t else None)
    half = crit * stats.stderr
    return stats.mean - half, stats.mean + half


def _welch_dof(a: SampleStats, b: SampleStats) -> float:
    va, vb = a.variance / a.n, b.variance / b.n
    denom = 0.0
    if a.n > 1:
        denom += va * va / (a.n - 1)
    if b.n > 1:
        denom += vb * vb / (b.n - 1)
    if denom == 0.0:
        return float("inf")
    return (va + vb) ** 2 / denom


def difference_ci(
    a: SampleStats, b: SampleStats, confidence: float = 0.95
) -> tuple[float, float]:
    """Welch confidence interval for ``mean(a) - mean(b)``.

    Algorithm 1 validates a frequency pair by requiring this interval to
    exclude zero; Algorithm 2 (line 19-20) accepts the post-transition tail
    when the interval against the phase-1 target statistics *includes*
    zero.
    """
    if a.n < 2 or b.n < 2:
        raise ConfigError("difference CI needs n >= 2 on both sides")
    se = math.sqrt(a.variance / a.n + b.variance / b.n)
    crit = _z_or_t(confidence, _welch_dof(a, b))
    diff = a.mean - b.mean
    return diff - crit * se, diff + crit * se


def two_sigma_band(
    stats: SampleStats, width_sigmas: float = 2.0
) -> tuple[float, float]:
    """The paper's acceptance band: mean +/- ``width_sigmas`` * std.

    Unlike a confidence interval this band covers individual observations
    (~95 % of them at 2 sigma under near-normality) regardless of how many
    samples contributed to the estimate — Sec. V-A.
    """
    if width_sigmas <= 0:
        raise ConfigError("band width must be positive")
    half = width_sigmas * stats.std
    return stats.mean - half, stats.mean + half
