"""Confidence intervals and the two-standard-deviation acceptance band.

The contrast between :func:`mean_ci` (shrinks with 1/sqrt(n)) and
:func:`two_sigma_band` (does not) is the statistical core of the paper:
with thousands of concurrent GPU threads, the confidence interval of the
mean collapses below the device timer granularity, so almost no individual
iteration can land inside it — FTaLaT's detection criterion degenerates.
The 2-sigma band instead reflects where individual execution times live
(~95 % of them for near-normal noise), which is the right question when
deciding "does this iteration already run at the target frequency?".

Critical values are served from an LRU cache keyed on (confidence, Welch
dof rounded to :data:`DOF_DECIMALS` decimals).  A full campaign issues
thousands of ``difference_ci`` calls whose degrees of freedom cluster
around a handful of values — uncached ``scipy.stats.t.ppf`` calls used to
account for roughly a quarter of campaign wall time.  Rounding the dof
perturbs the critical value by less than 1e-6 relative (the t quantile
varies slowly in dof), far below measurement noise; the cache is *exact*
for the rounded dof, which the test suite asserts against scipy.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np
from scipy import stats as sps

from repro.errors import ConfigError
from repro.stats.descriptive import SampleStats

__all__ = [
    "critical_value",
    "mean_ci",
    "difference_ci",
    "difference_ci_batch",
    "difference_ci_rows",
    "two_sigma_band",
    "welch_dof",
    "welch_dof_batch",
    "welch_dof_rows",
]

#: decimals the Welch dof is rounded to before the cache lookup
DOF_DECIMALS = 3
#: above this dof the t distribution is indistinguishable from the normal
NORMAL_DOF_CUTOFF = 200.0


@lru_cache(maxsize=65536)
def _cached_critical_value(confidence: float, dof_rounded: float | None) -> float:
    tail = 0.5 + confidence / 2.0
    if dof_rounded is None:
        return float(sps.norm.ppf(tail))
    return float(sps.t.ppf(tail, dof_rounded))


def critical_value(confidence: float, dof: float | None) -> float:
    """Two-sided critical value for ``confidence`` at ``dof`` (LRU-cached).

    ``dof`` is rounded to :data:`DOF_DECIMALS` decimals for the cache key;
    ``None`` or dof above :data:`NORMAL_DOF_CUTOFF` uses the normal
    distribution (the paper's large-sample regime).
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigError(f"confidence must be in (0, 1), got {confidence}")
    if dof is None or dof > NORMAL_DOF_CUTOFF:
        return _cached_critical_value(confidence, None)
    # np.round (not builtins.round) so scalar and batch callers agree on
    # the cache key in the rare cases where the two roundings differ.
    return _cached_critical_value(confidence, float(np.round(dof, DOF_DECIMALS)))


def _z_or_t(confidence: float, dof: float | None) -> float:
    # Retained internal alias (pre-cache name); new code should call
    # :func:`critical_value`.
    return critical_value(confidence, dof)


def mean_ci(
    stats: SampleStats, confidence: float = 0.95, use_t: bool = True
) -> tuple[float, float]:
    """Confidence interval of the sample mean."""
    if stats.n < 2:
        raise ConfigError("confidence interval needs n >= 2")
    crit = critical_value(confidence, stats.n - 1 if use_t else None)
    half = crit * stats.stderr
    return stats.mean - half, stats.mean + half


def welch_dof(a: SampleStats, b: SampleStats) -> float:
    """Welch-Satterthwaite degrees of freedom for ``a`` vs ``b``."""
    va, vb = a.variance / a.n, b.variance / b.n
    denom = 0.0
    if a.n > 1:
        denom += va * va / (a.n - 1)
    if b.n > 1:
        denom += vb * vb / (b.n - 1)
    if denom == 0.0:
        return float("inf")
    return (va + vb) ** 2 / denom


# Backwards-compatible private alias.
_welch_dof = welch_dof


def difference_ci(
    a: SampleStats, b: SampleStats, confidence: float = 0.95
) -> tuple[float, float]:
    """Welch confidence interval for ``mean(a) - mean(b)``.

    Algorithm 1 validates a frequency pair by requiring this interval to
    exclude zero; Algorithm 2 (line 19-20) accepts the post-transition tail
    when the interval against the phase-1 target statistics *includes*
    zero.
    """
    if a.n < 2 or b.n < 2:
        raise ConfigError("difference CI needs n >= 2 on both sides")
    se = math.sqrt(a.variance / a.n + b.variance / b.n)
    crit = critical_value(confidence, welch_dof(a, b))
    diff = a.mean - b.mean
    return diff - crit * se, diff + crit * se


def welch_dof_batch(
    var_a: np.ndarray, n_a: np.ndarray, b: SampleStats
) -> np.ndarray:
    """Vectorized :func:`welch_dof` of many samples against one reference.

    ``var_a``/``n_a`` are per-row variance and count arrays; rows with
    ``n_a <= 1`` on the array side contribute no denominator term, exactly
    like the scalar path.
    """
    var_a = np.asarray(var_a, dtype=np.float64)
    n_a = np.asarray(n_a, dtype=np.float64)
    va = var_a / n_a
    vb = b.variance / b.n
    denom = np.where(n_a > 1, va * va / np.maximum(n_a - 1, 1), 0.0)
    if b.n > 1:
        denom = denom + vb * vb / (b.n - 1)
    with np.errstate(divide="ignore", invalid="ignore"):
        dof = (va + vb) ** 2 / denom
    return np.where(denom == 0.0, np.inf, dof)


def difference_ci_batch(
    mean_a: np.ndarray,
    var_a: np.ndarray,
    n_a: np.ndarray,
    b: SampleStats,
    confidence: float = 0.95,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Welch CI of many samples against one reference sample.

    Row ``i`` reproduces ``difference_ci(SampleStats(n=n_a[i],
    mean=mean_a[i], std=sqrt(var_a[i]), ...), b, confidence)`` bit for bit:
    the per-row arithmetic uses the same expressions, and critical values
    come from the same rounded-dof cache (resolved once per distinct
    rounded dof).
    """
    if b.n < 2:
        raise ConfigError("difference CI needs n >= 2 on the reference side")
    mean_a = np.asarray(mean_a, dtype=np.float64)
    var_a = np.asarray(var_a, dtype=np.float64)
    n_a = np.asarray(n_a, dtype=np.float64)
    if np.any(n_a < 2):
        raise ConfigError("difference CI needs n >= 2 on both sides")

    se = np.sqrt(var_a / n_a + b.variance / b.n)
    dof = welch_dof_batch(var_a, n_a, b)

    keys = np.where(
        np.isfinite(dof) & (dof <= NORMAL_DOF_CUTOFF),
        np.round(dof, DOF_DECIMALS),
        np.inf,
    )
    crit = np.empty_like(keys)
    for key in np.unique(keys):
        value = (
            _cached_critical_value(confidence, None)
            if np.isinf(key)
            else _cached_critical_value(confidence, float(key))
        )
        crit[keys == key] = value

    diff = mean_a - b.mean
    return diff - crit * se, diff + crit * se


def welch_dof_rows(
    var_a: np.ndarray,
    n_a: np.ndarray,
    var_b: np.ndarray,
    n_b: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`welch_dof` with a per-row reference sample.

    The pair-parallel evaluation sweep confirms tails from *different*
    frequency pairs in one call, so the reference side is an array too.
    Row ``i`` reproduces ``welch_dof(a_i, b_i)`` bit for bit: rows with
    ``n <= 1`` on either side contribute no denominator term, and adding
    a literal ``0.0`` for them leaves the other term's float unchanged.
    """
    var_a = np.asarray(var_a, dtype=np.float64)
    n_a = np.asarray(n_a, dtype=np.float64)
    var_b = np.asarray(var_b, dtype=np.float64)
    n_b = np.asarray(n_b, dtype=np.float64)
    va = var_a / n_a
    vb = var_b / n_b
    denom = np.where(n_a > 1, va * va / np.maximum(n_a - 1, 1), 0.0)
    denom = denom + np.where(n_b > 1, vb * vb / np.maximum(n_b - 1, 1), 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        dof = (va + vb) ** 2 / denom
    return np.where(denom == 0.0, np.inf, dof)


def difference_ci_rows(
    mean_a: np.ndarray,
    var_a: np.ndarray,
    n_a: np.ndarray,
    mean_b: np.ndarray,
    var_b: np.ndarray,
    n_b: np.ndarray,
    confidence: float = 0.95,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Welch CI with per-row samples on *both* sides.

    The row-wise generalization of :func:`difference_ci_batch` for the
    cross-pair evaluation sweep, where each confirmation row carries its
    own phase-1 target statistics.  Row ``i`` reproduces
    ``difference_ci(a_i, b_i, confidence)`` bit for bit — identical
    per-row expressions, critical values from the same rounded-dof cache.
    """
    mean_a = np.asarray(mean_a, dtype=np.float64)
    var_a = np.asarray(var_a, dtype=np.float64)
    n_a = np.asarray(n_a, dtype=np.float64)
    mean_b = np.asarray(mean_b, dtype=np.float64)
    var_b = np.asarray(var_b, dtype=np.float64)
    n_b = np.asarray(n_b, dtype=np.float64)
    if np.any(n_a < 2) or np.any(n_b < 2):
        raise ConfigError("difference CI needs n >= 2 on both sides")

    se = np.sqrt(var_a / n_a + var_b / n_b)
    dof = welch_dof_rows(var_a, n_a, var_b, n_b)

    keys = np.where(
        np.isfinite(dof) & (dof <= NORMAL_DOF_CUTOFF),
        np.round(dof, DOF_DECIMALS),
        np.inf,
    )
    crit = np.empty_like(keys)
    for key in np.unique(keys):
        value = (
            _cached_critical_value(confidence, None)
            if np.isinf(key)
            else _cached_critical_value(confidence, float(key))
        )
        crit[keys == key] = value

    diff = mean_a - mean_b
    return diff - crit * se, diff + crit * se


def two_sigma_band(
    stats: SampleStats, width_sigmas: float = 2.0
) -> tuple[float, float]:
    """The paper's acceptance band: mean +/- ``width_sigmas`` * std.

    Unlike a confidence interval this band covers individual observations
    (~95 % of them at 2 sigma under near-normality) regardless of how many
    samples contributed to the estimate — Sec. V-A.
    """
    if width_sigmas <= 0:
        raise ConfigError("band width must be positive")
    half = width_sigmas * stats.std
    return stats.mean - half, stats.mean + half
