"""Statistics toolkit for the measurement methodology.

Implements the exact statistical machinery the paper builds on:

* descriptive statistics with both batch and online (Welford) forms,
* confidence intervals for means and for mean *differences* (the pair
  validation of Algorithm 1),
* Welch t / z null-hypothesis tests (phase 1 and the phase-3 confirmation),
* the two-standard-deviation acceptance band of Sec. V-A — the paper's key
  departure from FTaLaT's confidence-interval criterion,
* the relative-standard-error stopping rule of the LATEST campaign loop.
"""

from repro.stats.descriptive import OnlineStats, SampleStats, quantile_range, summarize
from repro.stats.intervals import difference_ci, mean_ci, two_sigma_band
from repro.stats.hypothesis_tests import (
    TestResult,
    means_differ,
    welch_t_test,
    z_test,
)
from repro.stats.rse import RseStoppingRule, relative_standard_error

__all__ = [
    "SampleStats",
    "OnlineStats",
    "summarize",
    "quantile_range",
    "mean_ci",
    "difference_ci",
    "two_sigma_band",
    "TestResult",
    "welch_t_test",
    "z_test",
    "means_differ",
    "relative_standard_error",
    "RseStoppingRule",
]
