"""Descriptive statistics: batch summaries and Welford online accumulation.

The accelerator methodology aggregates millions of iteration execution
times (every iteration on every SM); :class:`OnlineStats` lets the
evaluation stream over them without materializing intermediates, and its
``merge`` supports combining per-SM accumulators — the same pattern used to
combine thread-local partials in parallel reductions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["SampleStats", "OnlineStats", "summarize", "quantile_range"]


@dataclass(frozen=True)
class SampleStats:
    """Immutable summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        """Standard error of the mean (sigma-zero in the paper, Eq. 2)."""
        if self.n <= 0:
            return math.nan
        return self.std / math.sqrt(self.n)

    @property
    def variance(self) -> float:
        return self.std * self.std

    def scaled(self, factor: float) -> "SampleStats":
        """Stats of the sample multiplied by a positive constant."""
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return SampleStats(
            n=self.n,
            mean=self.mean * factor,
            std=self.std * factor,
            minimum=self.minimum * factor,
            maximum=self.maximum * factor,
        )


def summarize(values) -> SampleStats:
    """Batch :class:`SampleStats` of a 1-D array-like (ddof=1)."""
    x = np.asarray(values, dtype=np.float64).ravel()
    if x.size == 0:
        raise ConfigError("cannot summarize an empty sample")
    std = float(x.std(ddof=1)) if x.size > 1 else 0.0
    return SampleStats(
        n=int(x.size),
        mean=float(x.mean()),
        std=std,
        minimum=float(x.min()),
        maximum=float(x.max()),
    )


def quantile_range(values, lo: float = 0.05, hi: float = 0.95) -> float:
    """Width of the [lo, hi] quantile interval (paper Alg. 3 eps basis)."""
    if not 0.0 <= lo < hi <= 1.0:
        raise ConfigError(f"invalid quantile bounds ({lo}, {hi})")
    x = np.asarray(values, dtype=np.float64).ravel()
    if x.size == 0:
        raise ConfigError("cannot take quantiles of an empty sample")
    q = np.quantile(x, [lo, hi])
    return float(q[1] - q[0])


class OnlineStats:
    """Welford accumulator with pairwise merge.

    Numerically stable for long streams; ``merge`` uses the Chan et al.
    parallel-variance update so per-SM accumulators can be combined without
    revisiting data.
    """

    __slots__ = ("n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def push_many(self, values) -> None:
        """Vectorized bulk update (one merge of a batch summary)."""
        x = np.asarray(values, dtype=np.float64).ravel()
        if x.size == 0:
            return
        other = OnlineStats()
        other.n = int(x.size)
        other._mean = float(x.mean())
        other._m2 = float(((x - other._mean) ** 2).sum())
        other._min = float(x.min())
        other._max = float(x.max())
        self.merge(other)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """In-place parallel merge; returns self."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return self
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self._mean += delta * other.n / n
        self.n = n
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def snapshot(self) -> SampleStats:
        if self.n == 0:
            raise ConfigError("no data accumulated")
        return SampleStats(
            n=self.n,
            mean=self.mean,
            std=self.std,
            minimum=self._min,
            maximum=self._max,
        )
