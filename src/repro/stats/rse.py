"""Relative-standard-error stopping rule (paper Sec. VI).

LATEST repeats each frequency-pair measurement "until the RSE of the
switching latency falls below a predefined threshold" (default 5 %),
honouring a minimum measurement count before checking and a hard maximum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.stats.descriptive import summarize

__all__ = ["relative_standard_error", "RseStoppingRule"]


def relative_standard_error(values) -> float:
    """stderr / |mean| of a sample; inf for a zero mean or n < 2."""
    x = np.asarray(values, dtype=np.float64).ravel()
    if x.size < 2:
        return math.inf
    s = summarize(x)
    if s.mean == 0.0:
        return math.inf
    return s.stderr / abs(s.mean)


@dataclass(frozen=True)
class RseStoppingRule:
    """The campaign termination policy for one frequency pair.

    Attributes
    ----------
    threshold:
        Stop once RSE drops below this (default 5 %, the tool's default).
    min_measurements:
        Skip RSE checks until this many measurements exist ("ensuring that
        a sufficient data set is collected before evaluating precision").
    max_measurements:
        Hard stop even if the RSE threshold was never met.
    check_every:
        Measurements between RSE evaluations (the tool checks every 25).
    """

    threshold: float = 0.05
    min_measurements: int = 25
    max_measurements: int = 400
    check_every: int = 25

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ConfigError("RSE threshold must be positive")
        if self.min_measurements < 2:
            raise ConfigError("need at least two measurements")
        if self.max_measurements < self.min_measurements:
            raise ConfigError("max_measurements below min_measurements")
        if self.check_every < 1:
            raise ConfigError("check_every must be >= 1")

    def should_stop(self, values) -> bool:
        """Evaluate the rule for the measurements collected so far."""
        n = len(values)
        if n >= self.max_measurements:
            return True
        if n < self.min_measurements:
            return False
        if n % self.check_every != 0:
            return False
        return relative_standard_error(values) < self.threshold
