"""Null-hypothesis tests on summary statistics.

The methodology runs tests on *summaries* (mean/std/n), not raw arrays —
phase one condenses millions of iteration times into per-frequency
statistics before any pairwise comparison happens, which keeps the
host-side analysis cheap (paper: "separating the data processing from the
measurement itself").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as sps

from repro.errors import ConfigError
from repro.stats.descriptive import SampleStats
from repro.stats.intervals import _welch_dof

__all__ = ["TestResult", "welch_t_test", "z_test", "means_differ"]


@dataclass(frozen=True)
class TestResult:
    """Outcome of a two-sided test of ``mean(a) == mean(b)``."""

    __test__ = False  # not a pytest test class

    statistic: float
    pvalue: float
    dof: float
    kind: str

    def reject_null(self, alpha: float = 0.05) -> bool:
        """True when the equal-means hypothesis is rejected at ``alpha``."""
        if not 0.0 < alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
        return self.pvalue < alpha


def _standard_error(a: SampleStats, b: SampleStats) -> float:
    return math.sqrt(a.variance / a.n + b.variance / b.n)


def welch_t_test(a: SampleStats, b: SampleStats) -> TestResult:
    """Welch's unequal-variance t-test from summary statistics."""
    if a.n < 2 or b.n < 2:
        raise ConfigError("welch test needs n >= 2 on both sides")
    se = _standard_error(a, b)
    dof = _welch_dof(a, b)
    if se == 0.0:
        # Degenerate: identical constants on both sides.
        stat = 0.0 if a.mean == b.mean else math.inf
        p = 1.0 if a.mean == b.mean else 0.0
        return TestResult(statistic=stat, pvalue=p, dof=dof, kind="welch-t")
    stat = (a.mean - b.mean) / se
    if math.isinf(dof):
        p = 2.0 * float(sps.norm.sf(abs(stat)))
    else:
        p = 2.0 * float(sps.t.sf(abs(stat), dof))
    return TestResult(statistic=stat, pvalue=p, dof=dof, kind="welch-t")


def z_test(a: SampleStats, b: SampleStats) -> TestResult:
    """Large-sample z-test (the paper permits t, z, or CI interchangeably)."""
    if a.n < 1 or b.n < 1:
        raise ConfigError("z test needs at least one sample per side")
    se = _standard_error(a, b)
    if se == 0.0:
        stat = 0.0 if a.mean == b.mean else math.inf
        p = 1.0 if a.mean == b.mean else 0.0
        return TestResult(statistic=stat, pvalue=p, dof=math.inf, kind="z")
    stat = (a.mean - b.mean) / se
    return TestResult(
        statistic=stat,
        pvalue=2.0 * float(sps.norm.sf(abs(stat))),
        dof=math.inf,
        kind="z",
    )


def means_differ(
    a: SampleStats, b: SampleStats, alpha: float = 0.05, method: str = "welch"
) -> bool:
    """Convenience wrapper: do the two summaries have different means?"""
    test = welch_t_test(a, b) if method == "welch" else z_test(a, b)
    return test.reject_null(alpha)
