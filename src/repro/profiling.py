"""Profile post-processing: the campaign stage breakdown.

``latest-bench --profile OUT.pstats`` dumps a raw cProfile capture; this
module condenses it into the handful of numbers a perf PR actually needs
— where campaign time went, by pipeline stage — so regressions are
attributable without opening the dump in a viewer.

Stages are anchored on well-known functions (cumulative time, matched on
``(file basename, function name)``):

===========  =========================================================
stage        anchor(s)
===========  =========================================================
calibration  ``calibrate_facet`` + ``_calibrate_on_driver``
             (whole per-facet calibrations: facet clock, phase 1,
             probe — the stage the calibration cache eliminates)
phase1       ``run_phase1`` (characterization sweeps, per facet)
probe        ``_probe_windows`` (window-sizing probe passes)
batch-step   ``measure_pair_batch`` + ``measure_pair_blocked``
             (lockstep SoA rounds / single-pair blocked loops)
peel-off     ``_finish_peeled`` (diverged runners on the scalar path)
stream       ``StreamDispatcher.emit`` + ``ResultAccumulator.on_event``
             (campaign event dispatch + index-keyed result assembly)
===========  =========================================================

Stages may nest — a peeled runner's time is *inside* the batch-step
total, and ``measure_pair_blocked`` is also the workers' entry point when
no pair batching is active — so the rows are overlapping attributions
against total time, not a partition of it.
"""

from __future__ import annotations

import os
import pstats

__all__ = ["STAGE_ANCHORS", "render_stage_breakdown", "stage_times"]

#: stage name -> (file basename, function name) anchors, cumtimes summed
STAGE_ANCHORS: dict[str, tuple[tuple[str, str], ...]] = {
    "calibration": (
        ("worker.py", "calibrate_facet"),
        ("engine.py", "_calibrate_on_driver"),
    ),
    "phase1": (("phase1.py", "run_phase1"),),
    "probe": (("campaign.py", "_probe_windows"),),
    "batch-step": (
        ("pairbatch.py", "measure_pair_batch"),
        ("passblock.py", "measure_pair_blocked"),
    ),
    "peel-off": (("pairbatch.py", "_finish_peeled"),),
    "stream": (
        ("stream.py", "emit"),
        ("results.py", "on_event"),
    ),
}


def stage_times(stats_path: str) -> tuple[dict[str, float], float]:
    """Per-stage cumulative seconds and the capture's total time."""
    stats = pstats.Stats(stats_path)
    by_stage = {name: 0.0 for name in STAGE_ANCHORS}
    for (filename, _line, funcname), entry in stats.stats.items():
        base = os.path.basename(filename)
        cumtime = entry[3]
        for stage, anchors in STAGE_ANCHORS.items():
            if (base, funcname) in anchors:
                by_stage[stage] += cumtime
    return by_stage, stats.total_tt


def render_stage_breakdown(
    stats_path: str, cache_stats: "dict | None" = None
) -> str:
    """The stderr summary printed after ``--profile`` dumps its stats.

    ``cache_stats`` (the hit/miss/install counters of
    :func:`repro.core.calibcache.last_run_stats`, when a calibration
    cache was attached) appends one line relating the calibration stage's
    time to how much of it the cache elided this run.
    """
    by_stage, total = stage_times(stats_path)
    lines = [f"stage breakdown (total {total:.3f} s; stages may nest):"]
    for stage, seconds in by_stage.items():
        share = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(f"  {stage:<11} {seconds:9.3f} s  {share:5.1f}%")
    if cache_stats is not None:
        lines.append(
            "  calibration cache: "
            f"{cache_stats.get('hits', 0)} hit(s), "
            f"{cache_stats.get('misses', 0)} miss(es), "
            f"{cache_stats.get('installs', 0)} installed"
        )
    return "\n".join(lines)
