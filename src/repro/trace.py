"""Structured event tracing across the simulated stack.

A campaign touches many layers — timer sync, driver calls, kernel
launches, frequency transitions, throttle events — and debugging a
measurement anomaly means reconstructing that interleaving.  The tracer
collects timestamped events from any component that is handed a
:class:`Tracer` and supports filtered queries and compact timeline
rendering.

Tracing is opt-in and zero-cost when disabled (the default
:data:`NULL_TRACER` drops everything).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event."""

    t: float
    category: str
    name: str
    data: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        payload = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.t:14.6f}] {self.category:<12} {self.name:<28} {payload}"


class Tracer:
    """Event collector with bounded memory.

    Parameters
    ----------
    capacity:
        Maximum retained events; the oldest are dropped beyond it (a
        campaign can emit hundreds of thousands).
    enabled:
        Master switch; a disabled tracer drops events at ~zero cost.
    """

    def __init__(self, capacity: int = 100_000, enabled: bool = True) -> None:
        self.capacity = capacity
        self.enabled = enabled
        self._events: list[TraceEvent] = []
        self._dropped = 0

    # ------------------------------------------------------------------
    def emit(
        self, t: float, category: str, name: str, **data: Any
    ) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        if len(self._events) >= self.capacity:
            # Drop the oldest half to amortize list surgery.
            drop = self.capacity // 2
            del self._events[:drop]
            self._dropped += drop
        self._events.append(TraceEvent(t=t, category=category, name=name, data=data))

    # ------------------------------------------------------------------
    @property
    def n_events(self) -> int:
        return len(self._events)

    @property
    def n_dropped(self) -> int:
        return self._dropped

    def events(
        self,
        category: str | None = None,
        name: str | None = None,
        t_min: float | None = None,
        t_max: float | None = None,
    ) -> Iterator[TraceEvent]:
        """Filtered event iteration in time order."""
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if name is not None and event.name != name:
                continue
            if t_min is not None and event.t < t_min:
                continue
            if t_max is not None and event.t > t_max:
                continue
            yield event

    def last(self, category: str | None = None) -> TraceEvent | None:
        for event in reversed(self._events):
            if category is None or event.category == category:
                return event
        return None

    def categories(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def render(self, limit: int = 50, **filters: Any) -> str:
        """Compact text timeline of the (filtered) newest events."""
        selected = list(self.events(**filters))[-limit:]
        return "\n".join(event.format() for event in selected)

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0


#: A permanently disabled tracer — the default wiring everywhere.
NULL_TRACER = Tracer(capacity=1, enabled=False)
