"""Exception hierarchy shared across the repro library.

The simulated driver stack mirrors the failure modes of the real one: NVML
calls can fail with permission or argument errors, CUDA launches can be
invalid, and the measurement methodology itself can abort a frequency pair
(power throttling, statistically indistinguishable frequencies, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """Internal inconsistency in the simulated device or clocks."""


class ClockError(SimulationError):
    """Time ran backwards or a clock was used outside its domain."""


class CudaError(ReproError):
    """CUDA-runtime-like failure (invalid launch, missing sync, ...)."""


class NvmlError(ReproError):
    """NVML-like driver failure.

    Carries a ``code`` attribute mirroring NVML return codes so callers can
    branch on the failure class the way real NVML users do.
    """

    def __init__(self, code: str, message: str = "") -> None:
        self.code = code
        super().__init__(f"{code}: {message}" if message else code)


class MeasurementError(ReproError):
    """The methodology could not produce a valid measurement."""


class PairSkippedError(MeasurementError):
    """A frequency pair was skipped (indistinguishable or power-throttled)."""


class JournalModeError(MeasurementError):
    """A journal was opened under the wrong execution mode.

    Carries ``recorded_mode`` (the mode stamped into the journal's
    ``meta.json`` when it was created) so callers — the CLI in
    particular — can tell the user exactly which execution mode the
    journal requires and how to invoke it.
    """

    def __init__(self, message: str, recorded_mode: str) -> None:
        self.recorded_mode = recorded_mode
        super().__init__(message)


class ConfigError(ReproError):
    """Invalid benchmark or simulator configuration."""


class ServiceUnavailable(ReproError):
    """The campaign service cannot accept the request.

    Raised on submit while the service is draining or stopped, and on
    client operations against an unknown campaign id.
    """


class CampaignInterrupted(ReproError):
    """A campaign stopped early on SIGINT/SIGTERM after a graceful drain.

    Raised by journaling campaigns once in-flight jobs have been collected
    and the journal flushed; ``journal_dir`` names the directory a
    follow-up run can resume from (``--resume``).
    """

    def __init__(self, message: str, journal_dir: "str | None" = None) -> None:
        self.journal_dir = journal_dir
        super().__init__(message)
