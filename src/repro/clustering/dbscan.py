"""Density-based clustering (DBSCAN, Ester et al. 1996) from scratch.

Switching-latency samples are one-dimensional, which admits an
O(n log n) neighbourhood search via sorting + binary search; the general
d-dimensional path falls back to blocked brute-force distances.  Both paths
produce identical labels for 1-D inputs (covered by property tests).

Labels follow the sklearn convention: ``-1`` marks noise, clusters are
numbered ``0, 1, ...`` in order of discovery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["DbscanResult", "dbscan"]

NOISE = -1
_UNVISITED = -2


@dataclass(frozen=True)
class DbscanResult:
    """Labels plus derived conveniences."""

    labels: np.ndarray
    eps: float
    min_pts: int

    @property
    def n_clusters(self) -> int:
        return int(self.labels.max()) + 1 if (self.labels >= 0).any() else 0

    @property
    def noise_mask(self) -> np.ndarray:
        return self.labels == NOISE

    @property
    def noise_ratio(self) -> float:
        if self.labels.size == 0:
            return 0.0
        return float(self.noise_mask.mean())

    def cluster_sizes(self) -> list[int]:
        n_clusters = self.n_clusters
        if n_clusters == 0:
            return []
        # One bincount pass instead of one full label scan per cluster.
        counts = np.bincount(
            self.labels[self.labels >= 0], minlength=n_clusters
        )
        return counts.tolist()

    def largest_cluster(self) -> int:
        """Label of the most populous cluster (-1 if everything is noise)."""
        sizes = self.cluster_sizes()
        if not sizes:
            return NOISE
        return int(np.argmax(sizes))


def _neighbors_1d(x_sorted: np.ndarray, order: np.ndarray, eps: float):
    """Neighbour lists (in original indexing) for sorted 1-D data.

    The bisection keys ``x ± eps`` can round differently from the exact
    pairwise predicate ``|xi - xj| <= eps`` right at a neighbourhood
    boundary (e.g. ``1.0 + 0.1 == 1.1`` in doubles while
    ``1.1 - 1.0 > 0.1``), so the slices are corrected against the exact
    predicate — keeping this fast path label-equivalent to the
    d-dimensional brute-force distances for any input.
    """
    n = x_sorted.size
    lo = np.searchsorted(x_sorted, x_sorted - eps, side="left")
    hi = np.searchsorted(x_sorted, x_sorted + eps, side="right")
    # Grow/shrink every bound until it matches the exact predicate;
    # rounding puts each within a couple of elements of the true
    # boundary, so the loops converge almost immediately.
    while True:
        grow = (lo > 0) & (
            np.abs(x_sorted - x_sorted[np.maximum(lo - 1, 0)]) <= eps
        )
        if not grow.any():
            break
        lo[grow] -= 1
    while True:
        shrink = (lo < hi) & (
            np.abs(x_sorted - x_sorted[np.minimum(lo, n - 1)]) > eps
        )
        if not shrink.any():
            break
        lo[shrink] += 1
    while True:
        grow = (hi < n) & (
            np.abs(x_sorted[np.minimum(hi, n - 1)] - x_sorted) <= eps
        )
        if not grow.any():
            break
        hi[grow] += 1
    while True:
        shrink = (hi > lo) & (
            np.abs(x_sorted[np.maximum(hi - 1, 0)] - x_sorted) > eps
        )
        if not shrink.any():
            break
        hi[shrink] -= 1

    def neighbors(i_orig: int) -> np.ndarray:
        i_sorted = _inverse[i_orig]
        return order[lo[i_sorted] : hi[i_sorted]]

    # Build the inverse permutation once.
    _inverse = np.empty_like(order)
    _inverse[order] = np.arange(order.size)
    counts = hi - lo
    return neighbors, counts, _inverse


def _neighbors_nd(points: np.ndarray, eps: float):
    """Brute-force neighbour lists for (n, d) data, blocked for memory."""
    n = points.shape[0]
    eps2 = eps * eps
    block = max(1, min(n, int(4e7 // max(n, 1))))
    neighbor_lists: list[np.ndarray] = []
    for s in range(0, n, block):
        chunk = points[s : s + block]
        d2 = ((chunk[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
        for row in d2 <= eps2:
            neighbor_lists.append(np.flatnonzero(row))
    counts = np.array([len(nb) for nb in neighbor_lists])

    def neighbors(i: int) -> np.ndarray:
        return neighbor_lists[i]

    return neighbors, counts


def dbscan(points, eps: float, min_pts: int) -> DbscanResult:
    """Run DBSCAN over ``points`` (shape ``(n,)`` or ``(n, d)``).

    A point is *core* when at least ``min_pts`` points (itself included)
    lie within ``eps``; clusters grow from core points by breadth-first
    expansion; border points join the first cluster that reaches them;
    everything else is noise.
    """
    if eps <= 0:
        raise ConfigError(f"eps must be positive, got {eps}")
    if min_pts < 1:
        raise ConfigError(f"min_pts must be >= 1, got {min_pts}")

    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts[:, None]
    if pts.ndim != 2:
        raise ConfigError("points must be 1-D or 2-D")
    n = pts.shape[0]
    if n == 0:
        return DbscanResult(labels=np.empty(0, dtype=np.int64), eps=eps, min_pts=min_pts)

    if pts.shape[1] == 1:
        x = pts[:, 0]
        order = np.argsort(x, kind="stable")
        neighbors, counts_sorted, inverse = _neighbors_1d(x[order], order, eps)
        counts = counts_sorted[inverse]
    else:
        neighbors, counts = _neighbors_nd(pts, eps)

    core = counts >= min_pts
    labels = np.full(n, _UNVISITED, dtype=np.int64)
    cluster = 0
    for seed in range(n):
        if labels[seed] != _UNVISITED or not core[seed]:
            continue
        labels[seed] = cluster
        queue: deque[int] = deque([seed])
        while queue:
            p = queue.popleft()
            if not core[p]:
                continue
            for q in neighbors(p):
                q = int(q)
                if labels[q] == _UNVISITED or labels[q] == NOISE:
                    newly = labels[q] == _UNVISITED
                    labels[q] = cluster
                    if newly and core[q]:
                        queue.append(q)
        cluster += 1

    labels[labels == _UNVISITED] = NOISE
    return DbscanResult(labels=labels, eps=eps, min_pts=min_pts)
