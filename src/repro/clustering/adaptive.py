"""Adaptive iterative DBSCAN outlier detection (paper Algorithm 3).

The parameter descent: min_pts starts at 4 % of the dataset size and walks
down to 2 % in steps of two, with eps fixed at ``mult`` times the 0.05-0.95
quantile range of the latencies.  The first configuration whose noise
(outlier) ratio is at most 10 % wins; if none qualifies, the configuration
with the smallest noise ratio is kept — minimizing false outliers is the
algorithm's stated objective.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

import numpy as np

from repro.clustering.dbscan import DbscanResult, dbscan
from repro.errors import ConfigError
from repro.stats.descriptive import quantile_range

__all__ = ["AdaptiveDbscanConfig", "AdaptiveDbscanResult", "adaptive_dbscan"]


@dataclass(frozen=True)
class AdaptiveDbscanConfig:
    """Knobs of Algorithm 3 with the paper's defaults.

    ``eps_multiplier`` = 0.15 and the 4 %→2 % min_pts descent are the
    values the paper selected after the k-NN-distance analysis; they
    "provided consistent clustering results across all frequency pairs and
    GPUs from the three architectures".
    """

    eps_multiplier: float = 0.15
    minpts_hi_frac: float = 0.04
    minpts_lo_frac: float = 0.02
    minpts_step: int = 2
    max_noise_ratio: float = 0.10
    quantile_lo: float = 0.05
    quantile_hi: float = 0.95
    minpts_floor: int = 4

    def __post_init__(self) -> None:
        if self.eps_multiplier <= 0:
            raise ConfigError("eps multiplier must be positive")
        if not 0 < self.minpts_lo_frac <= self.minpts_hi_frac < 1:
            raise ConfigError("invalid min_pts fraction range")
        if self.minpts_step < 1:
            raise ConfigError("min_pts step must be >= 1")

    def minpts_schedule(self, n: int) -> list[int]:
        """The descending min_pts values to try for a dataset of size n."""
        start = max(self.minpts_floor, math.ceil(self.minpts_hi_frac * n))
        end = max(self.minpts_floor, math.floor(self.minpts_lo_frac * n))
        schedule = list(range(start, end - 1, -self.minpts_step))
        return schedule or [start]


@dataclass(frozen=True)
class AdaptiveDbscanResult:
    """Chosen clustering plus the descent trace."""

    result: DbscanResult
    eps: float
    min_pts: int
    attempts: tuple[tuple[int, float], ...]  # (min_pts, noise_ratio) per try
    converged: bool

    @property
    def labels(self) -> np.ndarray:
        return self.result.labels

    @property
    def outlier_mask(self) -> np.ndarray:
        return self.result.noise_mask

    @property
    def kept_mask(self) -> np.ndarray:
        return ~self.result.noise_mask

    @property
    def n_clusters(self) -> int:
        return self.result.n_clusters

    @property
    def outlier_ratio(self) -> float:
        return self.result.noise_ratio


def adaptive_dbscan(
    values, config: AdaptiveDbscanConfig | None = None
) -> AdaptiveDbscanResult:
    """Run the Algorithm-3 parameter descent on 1-D latency data."""
    cfg = config or AdaptiveDbscanConfig()
    x = np.asarray(values, dtype=np.float64).ravel()
    if x.size < cfg.minpts_floor + 1:
        raise ConfigError(
            f"adaptive DBSCAN needs more than {cfg.minpts_floor} samples, got {x.size}"
        )

    qr = quantile_range(x, cfg.quantile_lo, cfg.quantile_hi)
    if qr == 0.0:
        # Degenerate data (all latencies identical to timer resolution):
        # everything is one cluster, nothing is an outlier.
        labels = np.zeros(x.size, dtype=np.int64)
        res = DbscanResult(labels=labels, eps=0.0, min_pts=0)
        return AdaptiveDbscanResult(
            result=res, eps=0.0, min_pts=0, attempts=(), converged=True
        )
    eps = cfg.eps_multiplier * qr

    attempts: list[tuple[int, float]] = []
    best: DbscanResult | None = None
    chosen: DbscanResult | None = None
    for min_pts in cfg.minpts_schedule(x.size):
        res = dbscan(x, eps=eps, min_pts=min_pts)
        attempts.append((min_pts, res.noise_ratio))
        if best is None or res.noise_ratio < best.noise_ratio:
            best = res
        if res.noise_ratio <= cfg.max_noise_ratio:
            chosen = res
            break

    converged = chosen is not None
    final = chosen if chosen is not None else best
    assert final is not None
    return AdaptiveDbscanResult(
        result=final,
        eps=eps,
        min_pts=final.min_pts,
        attempts=tuple(attempts),
        converged=converged,
    )
