"""k-nearest-neighbour distance diagnostics for eps selection.

The paper follows the standard DBSCAN guideline: "the eps parameter is
often obtained through the k-nearest neighbors algorithm as its graph
representation knee point", and refines the quantile-range multiplier by
"comparing the ratio of the average k-nearest neighbor distance to the
0.05-0.95 quantile range" (Sec. V-C).  These helpers provide both
quantities.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.stats.descriptive import quantile_range

__all__ = ["kdist_curve", "knee_point", "mean_kdist_ratio"]


def kdist_curve(points, k: int) -> np.ndarray:
    """Sorted distances to each point's k-th nearest neighbour (ascending).

    1-D and low-dimensional inputs only (brute force distances).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts[:, None]
    n = pts.shape[0]
    if k < 1:
        raise ConfigError("k must be >= 1")
    if n <= k:
        raise ConfigError(f"need more than k={k} points, got {n}")
    d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
    d2.sort(axis=1)
    # Column 0 is the self-distance (zero); the k-th neighbour is column k.
    kdist = np.sqrt(d2[:, k])
    kdist.sort()
    return kdist


def knee_point(curve) -> tuple[int, float]:
    """Index and value of the knee of an ascending curve.

    Uses the max-distance-to-chord construction: the knee is the point
    farthest from the straight line joining the curve's endpoints.
    """
    y = np.asarray(curve, dtype=np.float64).ravel()
    if y.size < 3:
        raise ConfigError("knee detection needs at least three points")
    x = np.arange(y.size, dtype=np.float64)
    x0, y0, x1, y1 = x[0], y[0], x[-1], y[-1]
    chord_len = np.hypot(x1 - x0, y1 - y0)
    if chord_len == 0.0:
        return 0, float(y[0])
    # Perpendicular distance of each point from the chord.
    dist = np.abs((y1 - y0) * x - (x1 - x0) * y + x1 * y0 - y1 * x0) / chord_len
    idx = int(np.argmax(dist))
    return idx, float(y[idx])


def mean_kdist_ratio(points, k: int, lo: float = 0.05, hi: float = 0.95) -> float:
    """Average k-NN distance over the [lo, hi] quantile range of the data.

    The paper observed this ratio stays below ~0.20 when min_pts is chosen
    within 4 %..2 % of the dataset size — the observation that anchors the
    default eps multiplier of 0.15.
    """
    qr = quantile_range(points, lo, hi)
    if qr == 0.0:
        return float("inf")
    kd = kdist_curve(points, k)
    return float(kd.mean()) / qr
