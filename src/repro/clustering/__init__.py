"""Clustering toolkit for outlier detection (paper Sec. V-C, Algorithm 3).

Implements DBSCAN from scratch (no sklearn in this environment), the
k-nearest-neighbour distance diagnostics used to justify the eps choice,
the silhouette score used to validate multi-cluster pairs (Sec. VII-B),
and the paper's adaptive iterative parameter-descent wrapper.
"""

from repro.clustering.dbscan import DbscanResult, dbscan
from repro.clustering.kdist import kdist_curve, knee_point
from repro.clustering.silhouette import silhouette_samples, silhouette_score
from repro.clustering.adaptive import AdaptiveDbscanConfig, AdaptiveDbscanResult, adaptive_dbscan

__all__ = [
    "dbscan",
    "DbscanResult",
    "kdist_curve",
    "knee_point",
    "silhouette_samples",
    "silhouette_score",
    "adaptive_dbscan",
    "AdaptiveDbscanConfig",
    "AdaptiveDbscanResult",
]
