"""Silhouette score for cluster-quality validation (paper Sec. VII-B).

The paper validates its multi-cluster frequency pairs with the silhouette
score: "for our dataset, where two or more clusters were identified, the
score is always above 0.4 ... the average silhouette score over all three
GPUs is 0.84."

Noise points (label ``-1``) are excluded, matching the convention of
scoring only clustered samples.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["silhouette_samples", "silhouette_score"]


def silhouette_samples(points, labels) -> np.ndarray:
    """Per-sample silhouette values for clustered (non-noise) points.

    For sample i with intra-cluster mean distance a(i) and smallest
    other-cluster mean distance b(i)::

        s(i) = (b(i) - a(i)) / max(a(i), b(i))

    Samples in singleton clusters score 0 by convention.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts[:, None]
    labels = np.asarray(labels)
    if labels.shape[0] != pts.shape[0]:
        raise ConfigError("labels/points length mismatch")

    keep = labels >= 0
    pts = pts[keep]
    labs = labels[keep]
    uniq = np.unique(labs)
    if uniq.size < 2:
        raise ConfigError("silhouette needs at least two clusters")

    d = np.sqrt(((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2))
    n = pts.shape[0]
    scores = np.zeros(n)
    masks = {c: labs == c for c in uniq}
    sizes = {c: int(m.sum()) for c, m in masks.items()}

    for i in range(n):
        own = labs[i]
        if sizes[own] <= 1:
            scores[i] = 0.0
            continue
        a = d[i, masks[own]].sum() / (sizes[own] - 1)
        b = min(
            d[i, masks[c]].mean() for c in uniq if c != own
        )
        scores[i] = (b - a) / max(a, b)
    return scores


def silhouette_score(points, labels) -> float:
    """Mean silhouette over clustered samples (range [-1, 1])."""
    return float(silhouette_samples(points, labels).mean())
