"""repro — reproduction of *Methodology for GPU Frequency Switching Latency
Measurement* (IPPS 2025, arXiv:2502.20075).

The package implements the paper's LATEST methodology end to end on a
simulated CUDA GPU substrate:

* :mod:`repro.machine` — build a simulated node (host CPU + GPUs),
* :mod:`repro.core` — the three-phase switching-latency methodology,
* :mod:`repro.analysis` — tables/figures reproduction helpers,
* :mod:`repro.gpusim`, :mod:`repro.cuda`, :mod:`repro.nvml`,
  :mod:`repro.timesync` — the hardware/driver substrate,
* :mod:`repro.stats`, :mod:`repro.clustering` — statistical machinery,
* :mod:`repro.ftalat` — the CPU-side FTaLaT baseline,
* :mod:`repro.governor` — a latency-aware DVFS governor built on the
  measured tables (the paper's motivating use case).

Quickstart::

    from repro import LatestConfig, make_machine, run_campaign

    machine = make_machine("A100", seed=7)
    config = LatestConfig(frequencies=(705.0, 1095.0, 1410.0),
                          record_sm_count=16, max_measurements=40)
    result = run_campaign(machine, config)
    print(result.latency_matrix("max") * 1e3)   # worst case, ms

Pass ``workers=N`` to :func:`run_campaign` to fan the frequency pairs out
over a process pool (:mod:`repro.exec`); the result is bit-identical for
every worker count.
"""

from repro.core.campaign import LatestBenchmark, measure_pair, run_campaign
from repro.core.config import LatestConfig
from repro.core.results import CampaignResult, PairResult
from repro.machine import Machine, MachineBlueprint, make_machine

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "make_machine",
    "Machine",
    "MachineBlueprint",
    "LatestConfig",
    "LatestBenchmark",
    "measure_pair",
    "run_campaign",
    "CampaignResult",
    "PairResult",
]
