"""Shared campaign fixtures for the table/figure reproduction benchmarks.

Campaigns at bench fidelity (8-frequency subsets of the paper's axes,
RSE-driven repetition) are expensive, so each GPU's campaign is built once
per session and shared by every benchmark that reads from it.  Frequency
subsets are taken from the paper's Fig. 3 axes, including the pathological
bands (GH200 1170/1260/1875 MHz; RTX 930/990 and the mid-band plateau).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import pytest

from repro import LatestConfig, make_machine, run_campaign

#: the shared benchmark-results file at the repository root
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


def update_bench_json(entries: dict) -> None:
    """Merge ``entries`` into ``BENCH_campaign.json``, atomically.

    Several benchmarks record into the same file (campaign throughput,
    the memory-intensity ablation, ...); merging instead of overwriting
    lets them run in any order — and CI runs them as separate steps.
    The write goes through a temporary file in the same directory plus
    ``os.replace`` so an interrupted or concurrent bench step can never
    leave a truncated/corrupt JSON behind: readers always see either the
    old or the new complete file.
    """
    payload: dict = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(entries)
    fd, tmp_path = tempfile.mkstemp(
        dir=BENCH_JSON.parent, prefix=BENCH_JSON.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp_path, BENCH_JSON)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise

#: subsets of the paper's Fig. 3 heatmap axes
BENCH_FREQUENCIES = {
    "A100": (705.0, 840.0, 975.0, 1095.0, 1215.0, 1290.0, 1350.0, 1410.0),
    "GH200": (705.0, 975.0, 1170.0, 1260.0, 1410.0, 1665.0, 1875.0, 1980.0),
    "RTX6000": (750.0, 930.0, 990.0, 1110.0, 1290.0, 1470.0, 1560.0, 1650.0),
}


def bench_config(model: str, **overrides) -> LatestConfig:
    defaults = dict(
        frequencies=BENCH_FREQUENCIES[model],
        record_sm_count=12,
        min_measurements=20,
        max_measurements=60,
        rse_check_every=10,
        warmup_kernels=1,
        warmup_kernel_duration_s=0.08,
        measure_kernel_duration_s=0.12,
        delay_iterations=250,
        confirm_iterations=250,
        probe_window_s=0.5,
        settle_chunk_s=0.10,
    )
    defaults.update(overrides)
    return LatestConfig(**defaults)


@pytest.fixture(scope="session")
def a100_campaign():
    machine = make_machine("A100", seed=20_250_701)
    return run_campaign(machine, bench_config("A100"))


@pytest.fixture(scope="session")
def gh200_campaign():
    machine = make_machine("GH200", seed=20_250_702)
    return run_campaign(machine, bench_config("GH200"))


@pytest.fixture(scope="session")
def rtx_campaign():
    machine = make_machine("RTX6000", seed=20_250_703)
    return run_campaign(machine, bench_config("RTX6000"))


@pytest.fixture(scope="session")
def all_campaigns(rtx_campaign, a100_campaign, gh200_campaign):
    """Paper order: RTX Quadro 6000, A100, GH200."""
    return [rtx_campaign, a100_campaign, gh200_campaign]


#: reduced frequency sets for the deep (n~110 per pair) cluster campaigns;
#: the paper's cluster statistics come from "several hundreds" of
#: measurements per pair, which is what keeps dense latency tails in one
#: DBSCAN cluster
CLUSTER_FREQUENCIES = {
    "A100": (705.0, 885.0, 1065.0, 1215.0, 1410.0),
    "GH200": (705.0, 975.0, 1260.0, 1410.0, 1665.0, 1980.0),
    "RTX6000": (750.0, 930.0, 1110.0, 1290.0, 1560.0, 1650.0),
}


@pytest.fixture(scope="session")
def cluster_campaigns():
    """Deep campaigns (fixed 110 measurements/pair) for Sec. VII-B."""
    results = []
    for model, seed in (("RTX6000", 31), ("A100", 32), ("GH200", 33)):
        machine = make_machine(model, seed=20_250_710 + seed)
        cfg = bench_config(
            model,
            frequencies=CLUSTER_FREQUENCIES[model],
            record_sm_count=8,
            min_measurements=110,
            max_measurements=110,
            rse_check_every=110,
        )
        results.append(run_campaign(machine, cfg))
    return results


@pytest.fixture(scope="session")
def a100_unit_campaigns():
    """Four A100 units on one node (paper Sec. VII-C, Figs. 7-9)."""
    from repro.core.sweep import sweep_devices

    frequencies = (705.0, 885.0, 1065.0, 1215.0, 1350.0, 1410.0)
    machine = make_machine("A100", n_gpus=4, seed=20_250_704)
    cfg = bench_config(
        "A100",
        frequencies=frequencies,
        min_measurements=15,
        max_measurements=40,
    )
    return sweep_devices(machine, cfg)


def print_paper_vs_measured(title: str, rows: list[tuple[str, float, float]]):
    """Uniform paper-vs-measured comparison block used by the benches."""
    print(f"\n=== {title} ===")
    print(f"{'quantity':<42} {'paper':>12} {'measured':>12}")
    for label, paper, measured in rows:
        print(f"{label:<42} {paper:>12.3f} {measured:>12.3f}")
