"""E-T1: Table I — used hardware experimental setup.

Regenerates the hardware parameter table from the simulated devices' NVML
surface (not from the spec constants directly, so the driver path is what
is being validated).
"""


from repro.machine import make_machine

PAPER_TABLE1 = {
    # model: (arch, SM, driver, mem MHz, max, nominal, min, steps)
    "RTX6000": ("Turing", 72, "530.41.03", 7001, 2100, 1440, 300, 120),
    "A100": ("Ampere", 108, "550.54.15", 1215, 1410, 1095, 210, 81),
    "GH200": ("Hopper", 132, "545.23.08", 2619, 1980, 1980, 345, 110),
}


def build_table1():
    rows = {}
    for model in PAPER_TABLE1:
        machine = make_machine(model, seed=0)
        handle = machine.nvml().device_get_handle_by_index(0)
        spec = machine.device().spec
        clocks = handle.supported_graphics_clocks(
            handle.supported_memory_clocks()[0]
        )
        rows[model] = {
            "architecture": spec.architecture,
            "sm_count": spec.sm_count,
            "driver": handle.driver_version(),
            "mem_mhz": handle.supported_memory_clocks()[0],
            "max_mhz": clocks[0],
            "nominal_mhz": spec.nominal_sm_frequency_mhz,
            "min_mhz": clocks[-1],
            "steps": len(clocks),
        }
    return rows


def test_table1_reproduction(benchmark):
    rows = benchmark(build_table1)

    print("\nTABLE I: Used hardware experimental setup")
    header = f"{'':24}" + "".join(f"{m:>16}" for m in rows)
    print(header)
    for field in (
        "architecture", "sm_count", "driver", "mem_mhz",
        "max_mhz", "nominal_mhz", "min_mhz", "steps",
    ):
        line = f"{field:<24}" + "".join(
            f"{str(rows[m][field]):>16}" for m in rows
        )
        print(line)

    for model, (arch, sm, driver, mem, fmax, fnom, fmin, steps) in (
        PAPER_TABLE1.items()
    ):
        row = rows[model]
        assert row["architecture"] == arch
        assert row["sm_count"] == sm
        assert row["driver"] == driver
        assert row["mem_mhz"] == mem
        assert row["max_mhz"] == fmax
        assert row["nominal_mhz"] == fnom
        assert row["min_mhz"] == fmin
        # Ladder length within one step of the paper's count (NVIDIA
        # 15 MHz ladders: the RTX span holds 121 entries vs. 120 reported).
        assert abs(row["steps"] - steps) <= 1
