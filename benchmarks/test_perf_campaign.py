"""Campaign throughput benchmark → BENCH_campaign.json.

Times a small fixed-seed A100 campaign (4 frequencies / 12 pairs at bench
fidelity) several ways — the legacy serial loop, the execution engine
with one worker on the scalar reference loop, the engine on the batched
pass-block pipeline, the pair-parallel SoA tier at batch widths 1/4/12,
and (when the host can honestly run it) the engine with a 4-process pool
— and writes wall seconds plus measurement throughput to
``BENCH_campaign.json`` at the repository root, so later PRs have a
recorded perf baseline to not regress.

``test_perf_floor_gate`` additionally enforces the committed floor in
``benchmarks/perf_floor.json`` on the 1-CPU reference container: the
batched mode failing more than the recorded tolerance below its floor
fails the bench job.  Other hosts record a skip reason instead (same
pattern as ``engine_workers_4``) — their absolute numbers measure the
runner, not the engine.

Honesty rules:

* every mode is timed ``_REPEATS`` times and the **best** wall clock is
  recorded (standard practice — the minimum is the least noise-polluted
  sample of a deterministic workload on a shared container);
* the multi-worker comparison is *skipped with a recorded reason* when
  the host has fewer cores than workers — timing a 4-process pool on a
  1-core container produced the seed's infamous 0.772x "speedup", which
  measured the scheduler, not the engine.

Reference points on the original seed code (single CPU container):
~2.2 s serial, ~230 measurements/s; PR 1 recorded 448.23 meas/s for
``engine_workers_1``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import pytest

from benchmarks.conftest import BENCH_JSON, update_bench_json
from repro import LatestConfig, make_machine, run_campaign

#: committed throughput floors for the reference container
PERF_FLOOR_JSON = Path(__file__).resolve().parent / "perf_floor.json"

_SEED = 42
_FREQUENCIES = (705.0, 975.0, 1215.0, 1410.0)
_REPEATS = 5
#: engine_workers_1 measurements/s recorded by PR 1 (the perf baseline
#: the batched pipeline is scored against)
_BASELINE_ENGINE_1 = 448.23


def _bench_fidelity_config() -> LatestConfig:
    """Pinned copy of the conftest bench fidelity (a perf baseline must
    not drift when the shared fixtures are retuned).

    ``pass_block_size=None`` pins the scalar reference loop; batched
    modes override it explicitly so the comparison axis is visible here.
    """
    return LatestConfig(
        frequencies=_FREQUENCIES,
        record_sm_count=12,
        min_measurements=20,
        max_measurements=60,
        rse_check_every=10,
        warmup_kernels=1,
        warmup_kernel_duration_s=0.08,
        measure_kernel_duration_s=0.12,
        delay_iterations=250,
        confirm_iterations=250,
        probe_window_s=0.5,
        settle_chunk_s=0.10,
        pass_block_size=None,
    )


def _timed_campaign(
    workers,
    pass_block_size=None,
    pair_batch_size=None,
    journal_root=None,
    sinks_factory=None,
):
    best = None
    for i in range(_REPEATS):
        machine = make_machine("A100", seed=_SEED)
        config = replace(
            _bench_fidelity_config(),
            pass_block_size=pass_block_size,
            pair_batch_size=pair_batch_size,
        )
        # A journal open refuses an existing directory, so each repeat
        # journals into its own (the fsync-per-pair cost is identical).
        journal = None if journal_root is None else str(journal_root / f"r{i}")
        # Fresh sinks per repeat: a sink accumulates state for exactly
        # one campaign stream.
        sinks = () if sinks_factory is None else sinks_factory(i)
        t0 = time.perf_counter()
        result = run_campaign(
            machine, config, workers=workers, journal=journal, sinks=sinks
        )
        wall_s = time.perf_counter() - t0
        if best is None or wall_s < best[0]:
            best = (wall_s, result)
    wall_s, result = best
    n = sum(p.n_measurements for p in result.iter_measured())
    return {
        "wall_s": round(wall_s, 4),
        "n_measurements": n,
        "n_measured_pairs": result.n_measured_pairs,
        "measurements_per_s": round(n / wall_s, 2),
    }, result


def test_campaign_throughput_baseline():
    serial, _ = _timed_campaign(workers=None)
    engine1, _ = _timed_campaign(workers=1)
    batched, _ = _timed_campaign(workers=1, pass_block_size=25)

    # Pair-parallel SoA tier at the three tracked batch widths.
    soa = {}
    for width in (1, 4, 12):
        row, _ = _timed_campaign(
            workers=1, pass_block_size=25, pair_batch_size=width
        )
        row["speedup_vs_engine_batched_block25"] = round(
            row["measurements_per_s"] / batched["measurements_per_s"], 3
        )
        soa[f"batch_{width}"] = row

    # Sanity: every mode measures the full pair grid, and the batched
    # pipelines reproduce the scalar engine's measurement set exactly.
    assert serial["n_measured_pairs"] == 12
    assert engine1["n_measured_pairs"] == 12
    assert batched["n_measured_pairs"] == 12
    assert batched["n_measurements"] == engine1["n_measurements"]
    for row in soa.values():
        assert row["n_measured_pairs"] == 12
        assert row["n_measurements"] == engine1["n_measurements"]

    cpu_count = os.cpu_count() or 1
    if cpu_count >= 4:
        engine4, _ = _timed_campaign(workers=4)
        assert engine4["n_measurements"] == engine1["n_measurements"]
        parallel_speedup = round(engine1["wall_s"] / engine4["wall_s"], 3)
    else:
        engine4 = {
            "skipped": True,
            "reason": (
                f"host has {cpu_count} CPU(s) < 4 workers; a process-pool "
                "timing would measure scheduler contention, not the engine"
            ),
        }
        parallel_speedup = None

    payload = {
        "benchmark": (
            "A100 campaign, 4 frequencies / 12 pairs, bench fidelity; "
            "modes: serial, engine, pass-block batched, pair-parallel SoA "
            "(soa_pair_batch)"
        ),
        "seed": _SEED,
        "frequencies_mhz": list(_FREQUENCIES),
        "cpu_count": cpu_count,
        "timing": f"best of {_REPEATS} runs per mode",
        "serial_legacy": serial,
        "engine_workers_1": engine1,
        "engine_batched_block25": batched,
        "soa_pair_batch": soa,
        "engine_workers_4": engine4,
        "parallel_speedup_vs_engine_1": parallel_speedup,
        "batched_speedup_vs_engine_1": round(
            engine1["wall_s"] / batched["wall_s"], 3
        ),
        "batched_speedup_vs_pr1_baseline": round(
            batched["measurements_per_s"] / _BASELINE_ENGINE_1, 3
        ),
        "baseline_note": (
            f"PR 1 baseline ({_BASELINE_ENGINE_1} meas/s) was recorded on "
            "the 1-CPU reference container; the speedup ratio is only "
            "meaningful on comparable hardware — cross-host runs (CI) "
            "should track measurements_per_s over time instead"
        ),
    }
    update_bench_json(payload)

    # Guardrails rather than tight bounds (CI boxes vary): a campaign
    # should finish in seconds and sustain hundreds of measurements/s.
    assert serial["wall_s"] < 30.0
    assert serial["measurements_per_s"] > 50.0
    assert batched["wall_s"] < 30.0


def test_journal_overhead(tmp_path):
    """Record what the durable journal costs the batched engine mode.

    The journal fsyncs one framed record per completed pair — a fixed
    per-pair cost that should stay a small fraction of the measurement
    wall clock.  Both rows land in ``BENCH_campaign.json`` so the
    trajectory is tracked alongside the other modes.
    """
    plain, plain_result = _timed_campaign(workers=1, pass_block_size=25)
    journaled, journaled_result = _timed_campaign(
        workers=1, pass_block_size=25, journal_root=tmp_path
    )

    # Journaling must not perturb the measurements themselves.
    assert journaled["n_measured_pairs"] == plain["n_measured_pairs"]
    assert journaled["n_measurements"] == plain["n_measurements"]
    assert journaled_result.wall_virtual_s == plain_result.wall_virtual_s

    overhead_pct = round(
        100.0 * (journaled["wall_s"] / plain["wall_s"] - 1.0), 2
    )
    update_bench_json(
        {
            "journal_overhead": {
                "mode": "engine_batched_block25, workers=1",
                "journal_off": plain,
                "journal_on": journaled,
                "overhead_pct": overhead_pct,
                "note": (
                    "per-pair fsync'd append; negative values are run-to-"
                    "run noise on shared containers"
                ),
            }
        }
    )

    # Guardrail, not a tight bound: a per-pair fsync must never dominate
    # a campaign that measures for seconds.
    assert journaled["wall_s"] < 30.0


def test_stream_overhead(tmp_path):
    """Record what attached stream sinks cost the batched engine mode.

    The campaign event stream is the only result path, so "sinks off"
    still dispatches every event to the internal accumulator; "sinks on"
    additionally attaches the three stock consumers — live progress
    (written to an in-memory buffer), incremental per-pair CSV output,
    and an event recorder — the configuration a monitored production
    campaign would run.  Emitting events advances no virtual clock and
    draws no RNG, so the measurements must be untouched; only real time
    may move.  Both rows land in ``BENCH_campaign.json``.
    """
    import io

    from repro.core.csvio import CsvStreamSink
    from repro.core.stream import ProgressSink, RecordingSink

    def sinks_on(i):
        return (
            ProgressSink(out=io.StringIO()),
            CsvStreamSink(tmp_path / f"stream{i}"),
            RecordingSink(),
        )

    off, off_result = _timed_campaign(workers=1, pass_block_size=25)
    on, on_result = _timed_campaign(
        workers=1, pass_block_size=25, sinks_factory=sinks_on
    )

    # Sinks must not perturb the measurements themselves.
    assert on["n_measured_pairs"] == off["n_measured_pairs"]
    assert on["n_measurements"] == off["n_measurements"]
    assert on_result.wall_virtual_s == off_result.wall_virtual_s

    overhead_pct = round(100.0 * (on["wall_s"] / off["wall_s"] - 1.0), 2)
    update_bench_json(
        {
            "stream_overhead": {
                "mode": "engine_batched_block25, workers=1",
                "sinks": "ProgressSink + CsvStreamSink + RecordingSink",
                "sinks_off": off,
                "sinks_on": on,
                "overhead_pct": overhead_pct,
                "note": (
                    "synchronous fan-out per event (progress render, "
                    "atomic per-pair CSV write, list append); negative "
                    "values are run-to-run noise on shared containers"
                ),
            }
        }
    )

    # Guardrail: observability must never dominate measurement time.
    assert on["wall_s"] < 30.0


def test_calibration_cache_speedup(tmp_path):
    """Record what the calibration cache saves a repeat campaign.

    A 3-facet memory-axis campaign at bench fidelity pays three facet
    calibrations (facet clock settle + phase 1 + probe) before any pair
    is measured.  This benchmark times the campaign cold (empty cache —
    a fresh directory per repeat so every cold repeat really installs)
    and warm (every facet replayed from the cache), plus the facet
    calibrations themselves sequentially vs on a process pool, and
    lands all four numbers under ``calibration_cache`` in
    ``BENCH_campaign.json``.  Bit-identity between the variants is a
    guardrail here — the real contract lives in
    ``tests/test_calibcache.py``.
    """
    import pickle
    from concurrent.futures import ProcessPoolExecutor

    from repro.core.calibcache import last_run_stats
    from repro.exec.supervise import mp_context
    from repro.exec.worker import calibrate_facet, worker_calibrate

    facets = (1410.0, 1095.0, 810.0)

    def cache_config(cache_dir):
        return replace(
            _bench_fidelity_config(),
            frequencies=(1215.0, 810.0),
            axis="memory",
            locked_sm_mhz=facets,
            pass_block_size=25,
            calibration_cache=str(cache_dir),
        )

    def timed(cache_dir_for):
        best = None
        for i in range(_REPEATS):
            machine = make_machine("A100", seed=_SEED)
            config = cache_config(cache_dir_for(i))
            t0 = time.perf_counter()
            result = run_campaign(machine, config, workers=1)
            wall_s = time.perf_counter() - t0
            if best is None or wall_s < best[0]:
                best = (wall_s, result, last_run_stats())
        return best

    cold_wall, cold_result, cold_stats = timed(
        lambda i: tmp_path / f"cold{i}"
    )
    warm_dir = tmp_path / "warm"
    # Populate once, then every timed repeat is fully warm.
    run_campaign(
        make_machine("A100", seed=_SEED), cache_config(warm_dir), workers=1
    )
    warm_wall, warm_result, warm_stats = timed(lambda i: warm_dir)

    # Guardrails: the warm replay must not perturb the campaign.
    assert cold_stats == {"hits": 0, "misses": 3, "installs": 3, "corrupt": 0}
    assert warm_stats["hits"] == 3 and warm_stats["misses"] == 0
    assert warm_result.wall_virtual_s == cold_result.wall_virtual_s
    assert (
        warm_result.n_measured_pairs == cold_result.n_measured_pairs
    )

    # Facet calibration itself, sequential vs process-pool parallel.
    blueprint = make_machine("A100", seed=_SEED).blueprint
    cal_config = cache_config(tmp_path / "unused")
    cal_args = [
        (blueprint, cal_config, i, facet, 0.0)
        for i, facet in enumerate(facets)
    ]
    t0 = time.perf_counter()
    sequential = [calibrate_facet(*a) for a in cal_args]
    sequential_s = time.perf_counter() - t0

    cpu_count = os.cpu_count() or 1
    if cpu_count >= len(facets):
        t0 = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=len(facets), mp_context=mp_context()
        ) as pool:
            parallel = list(pool.map(worker_calibrate, cal_args))
        parallel_s = time.perf_counter() - t0
        assert pickle.dumps(parallel) == pickle.dumps(sequential)
        parallel_row = {
            "parallel_pool3_s": round(parallel_s, 4),
            "parallel_speedup": round(sequential_s / parallel_s, 2),
        }
    else:
        parallel_row = {
            "parallel_skipped": (
                f"host has {cpu_count} CPU(s) < {len(facets)} calibration "
                "workers; pool timing would measure the scheduler"
            )
        }

    update_bench_json(
        {
            "calibration_cache": {
                "mode": "engine_batched_block25, workers=1, memory axis, "
                "3 locked-SM facets",
                "cold_wall_s": round(cold_wall, 4),
                "warm_wall_s": round(warm_wall, 4),
                "warm_speedup": round(cold_wall / warm_wall, 2),
                "calibration_fraction_est": round(
                    1.0 - warm_wall / cold_wall, 4
                ),
                "cold_stats": cold_stats,
                "warm_stats": warm_stats,
                "facet_calibration": {
                    "n_facets": len(facets),
                    "sequential_s": round(sequential_s, 4),
                    **parallel_row,
                },
                "note": (
                    "warm runs replay all facet calibrations from the "
                    "cache; calibration_fraction_est is the share of the "
                    "cold wall clock the cache elides"
                ),
            }
        }
    )

    # Guardrail: a warm run must never be slower than cold beyond noise.
    assert warm_wall < cold_wall * 1.10


def test_perf_floor_gate():
    """Fail the bench job when the batched mode regresses below floor.

    Reads the throughput the baseline test just recorded (so running this
    gate alone re-checks the last recorded numbers without re-timing) and
    compares against the committed floor in ``perf_floor.json``.  The
    floor is only meaningful on the 1-CPU reference container it was
    recorded on; other hosts record a skip reason into the bench JSON,
    exactly like ``engine_workers_4``.
    """
    floors = json.loads(PERF_FLOOR_JSON.read_text())
    entry = floors["engine_batched_block25"]
    floor = entry["measurements_per_s_floor"]
    tolerance = floors["tolerance"]

    cpu_count = os.cpu_count() or 1
    if cpu_count != floors["reference_cpu_count"]:
        reason = (
            f"host has {cpu_count} CPU(s); the committed floor "
            f"({floor} meas/s) was recorded on the "
            f"{floors['reference_cpu_count']}-CPU reference container and "
            "would gate runner speed, not the engine"
        )
        update_bench_json(
            {"perf_floor_gate": {"skipped": True, "reason": reason}}
        )
        pytest.skip(reason)

    recorded = json.loads(BENCH_JSON.read_text())
    measured = recorded["engine_batched_block25"]["measurements_per_s"]
    minimum = floor * (1.0 - tolerance)
    update_bench_json(
        {
            "perf_floor_gate": {
                "floor_measurements_per_s": floor,
                "tolerance": tolerance,
                "measured_measurements_per_s": measured,
                "passed": measured >= minimum,
            }
        }
    )
    assert measured >= minimum, (
        f"batched campaign throughput regressed: {measured} meas/s is more "
        f"than {tolerance:.0%} below the committed floor of {floor} meas/s"
    )
