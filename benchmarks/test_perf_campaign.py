"""Campaign throughput benchmark → BENCH_campaign.json.

Times a small fixed-seed A100 campaign (4 frequencies / 12 pairs at bench
fidelity) three ways — the legacy serial loop, the execution engine with
one worker, and the engine with a 4-process pool — and writes wall seconds
plus measurement throughput to ``BENCH_campaign.json`` at the repository
root, so later PRs have a recorded perf baseline to not regress.

Reference points on the original seed code (single CPU container):
~2.2 s serial, ~230 measurements/s.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import LatestConfig, make_machine, run_campaign

_REPO_ROOT = Path(__file__).resolve().parents[1]
_OUTPUT = _REPO_ROOT / "BENCH_campaign.json"

_SEED = 42
_FREQUENCIES = (705.0, 975.0, 1215.0, 1410.0)


def _bench_fidelity_config() -> LatestConfig:
    """Pinned copy of the conftest bench fidelity (a perf baseline must
    not drift when the shared fixtures are retuned)."""
    return LatestConfig(
        frequencies=_FREQUENCIES,
        record_sm_count=12,
        min_measurements=20,
        max_measurements=60,
        rse_check_every=10,
        warmup_kernels=1,
        warmup_kernel_duration_s=0.08,
        measure_kernel_duration_s=0.12,
        delay_iterations=250,
        confirm_iterations=250,
        probe_window_s=0.5,
        settle_chunk_s=0.10,
    )


def _timed_campaign(workers):
    machine = make_machine("A100", seed=_SEED)
    config = _bench_fidelity_config()
    t0 = time.perf_counter()
    result = run_campaign(machine, config, workers=workers)
    wall_s = time.perf_counter() - t0
    n = sum(p.n_measurements for p in result.iter_measured())
    return {
        "wall_s": round(wall_s, 4),
        "n_measurements": n,
        "n_measured_pairs": result.n_measured_pairs,
        "measurements_per_s": round(n / wall_s, 2),
    }, result


def test_campaign_throughput_baseline():
    serial, serial_result = _timed_campaign(workers=None)
    engine1, engine1_result = _timed_campaign(workers=1)
    engine4, engine4_result = _timed_campaign(workers=4)

    # Sanity: every mode measures the full pair grid.
    assert serial["n_measured_pairs"] == 12
    assert engine1["n_measured_pairs"] == 12
    assert engine4["n_measured_pairs"] == 12
    # Engine runs are bit-identical regardless of worker count.
    assert engine1["n_measurements"] == engine4["n_measurements"]

    payload = {
        "benchmark": "A100 campaign, 4 frequencies / 12 pairs, bench fidelity",
        "seed": _SEED,
        "frequencies_mhz": list(_FREQUENCIES),
        "cpu_count": os.cpu_count(),
        "serial_legacy": serial,
        "engine_workers_1": engine1,
        "engine_workers_4": engine4,
        "parallel_speedup_vs_engine_1": round(
            engine1["wall_s"] / engine4["wall_s"], 3
        ),
    }
    _OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    # Guardrails rather than tight bounds (CI boxes vary): a campaign
    # should finish in seconds and sustain hundreds of measurements/s.
    assert serial["wall_s"] < 30.0
    assert serial["measurements_per_s"] > 50.0
    assert engine4["wall_s"] < 60.0
