"""E-T2: Table II — summary of switching latencies across GPUs.

Regenerates the min/mean/max of best-case and worst-case per-pair
latencies for all three GPUs and compares the *shape* against the
published values: ordering of devices, asymmetry between best and worst
case, and the rough factors between architectures.
"""


from benchmarks.conftest import print_paper_vs_measured
from repro.analysis.paper_reference import PAPER_TABLE2
from repro.analysis.render import render_table2
from repro.analysis.summary import summarize_campaign


def test_table2_reproduction(benchmark, all_campaigns):
    rows = benchmark(lambda: [summarize_campaign(c) for c in all_campaigns])

    print()
    print(render_table2(rows))
    for row in rows:
        paper = PAPER_TABLE2[row.gpu_name]
        print_paper_vs_measured(
            f"Table II — {row.gpu_name}",
            [
                ("worst-case min [ms]", paper.worst.min_ms, row.worst.min_ms),
                ("worst-case mean [ms]", paper.worst.mean_ms, row.worst.mean_ms),
                ("worst-case max [ms]", paper.worst.max_ms, row.worst.max_ms),
                ("best-case min [ms]", paper.best.min_ms, row.best.min_ms),
                ("best-case mean [ms]", paper.best.mean_ms, row.best.mean_ms),
                ("best-case max [ms]", paper.best.max_ms, row.best.max_ms),
            ],
        )

    by_name = {r.gpu_name: r for r in rows}
    rtx = by_name["RTX Quadro 6000"]
    a100 = by_name["A100 SXM-4"]
    gh200 = by_name["GH200"]

    # --- shape assertions against the paper -----------------------------
    # A100 is the tightest/fastest device overall.
    assert a100.worst.mean_ms < rtx.worst.mean_ms
    assert a100.worst.max_ms < 40.0
    assert 3.0 < a100.best.min_ms < 8.0
    assert 8.0 < a100.worst.mean_ms < 30.0

    # RTX: worst-case mean ~82 ms, plateau-driven; absolute max ~350 ms.
    assert 40.0 < rtx.worst.mean_ms < 160.0
    assert rtx.worst.max_ms > 200.0
    # RTX best-case can be sub-ms (the 1650->1560 pair).
    assert rtx.best.min_ms < 3.0

    # GH200: mostly fast but with extreme maxima in the special bands.
    assert gh200.best.min_ms < 9.0
    assert gh200.worst.max_ms > 150.0
    # GPUs, unlike CPUs, live in the tens-to-hundreds of ms regime.
    assert all(r.worst.mean_ms > 5.0 for r in rows)
