"""E-S1: Sec. VII-B cluster statistics across all pairs.

The paper reports the share of single-cluster pairs per GPU (GH200 85 %,
A100 96 %, RTX Quadro 6000 70 %), a maximum of five clusters (GH200), and
silhouette scores always above 0.4 with a 0.84 average over the GPUs.
"""

import numpy as np

from benchmarks.conftest import print_paper_vs_measured
from repro.analysis.clusters import cluster_report
from repro.analysis.paper_reference import (
    PAPER_AVG_SILHOUETTE,
    PAPER_MIN_SILHOUETTE,
    PAPER_SINGLE_CLUSTER_SHARE,
)


def test_cluster_statistics(benchmark, cluster_campaigns):
    reports = benchmark(lambda: [cluster_report(c) for c in cluster_campaigns])

    rows = []
    for report in reports:
        paper_share = PAPER_SINGLE_CLUSTER_SHARE[report.gpu_name]
        rows.append(
            (
                f"{report.gpu_name}: single-cluster share",
                paper_share,
                report.single_cluster_share,
            )
        )
    print_paper_vs_measured("Sec. VII-B cluster structure", rows)

    by_name = {r.gpu_name: r for r in reports}
    # Ordering of single-cluster shares matches the paper:
    # A100 (most unimodal) > GH200 > RTX Quadro 6000 (most multimodal).
    assert (
        by_name["A100 SXM-4"].single_cluster_share
        >= by_name["GH200"].single_cluster_share
        >= by_name["RTX Quadro 6000"].single_cluster_share - 0.05
    )
    assert by_name["A100 SXM-4"].single_cluster_share > 0.75
    assert by_name["RTX Quadro 6000"].single_cluster_share < 0.90

    # Silhouette validation of multi-cluster pairs.
    sils = np.concatenate(
        [r.multi_cluster_silhouettes for r in reports if r.multi_cluster_silhouettes.size]
    )
    print(
        f"\nsilhouettes: n={sils.size} min={sils.min():.2f} "
        f"mean={sils.mean():.2f} "
        f"(paper: min > {PAPER_MIN_SILHOUETTE}, avg {PAPER_AVG_SILHOUETTE})"
    )
    assert sils.size > 0
    assert sils.min() > PAPER_MIN_SILHOUETTE
    assert sils.mean() > 0.6

    # GH200 is the only device with >2 clusters (up to five).
    assert by_name["GH200"].max_clusters >= 3
    # Outliers never exceed a low percentage of the measurements.
    for report in reports:
        assert report.outlier_share() < 0.12
