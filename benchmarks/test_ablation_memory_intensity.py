"""A-5: ablation of the kernel ``memory_intensity`` on the memory axis.

The memory-axis campaign can only detect a memory-clock switch through
the roofline stall: a fraction ``beta`` of each iteration's cycle budget
is memory-bound, so iteration time stretches by
``(1 - beta) + beta * f_ref / f_mem`` at reduced memory clocks.  This
bench sweeps ``beta`` and scores detection quality against the injected
``MemoryLatencyProfile`` ground truth, exposing both failure regimes:

* ``beta = 0``: iteration times ignore the memory clock entirely —
  phase 1 rejects every pair as statistically indistinguishable and the
  campaign measures nothing (the methodology's own guard rail);
* tiny ``beta``: pairs squeak past the phase-1 CI test, but the
  per-iteration stretch is so close to the noise floor that phase 3
  mis-detects — relative errors approach 100 %;
* moderate-to-high ``beta``: errors collapse to a few percent and stay
  flat, which is why the memory axis defaults to ``beta = 0.70``.

Results are merged into ``BENCH_campaign.json`` under
``memory_intensity_ablation``.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import update_bench_json
from repro import LatestConfig, make_machine, run_campaign

_SEED = 4242
_MEMORY_LADDER = (1215.0, 810.0, 405.0)  # the A100 HBM P-states
_INTENSITIES = (0.0, 0.01, 0.05, 0.30, 0.70)


def _ablation_config(beta: float) -> LatestConfig:
    return LatestConfig(
        frequencies=_MEMORY_LADDER,
        axis="memory",
        kernel_memory_intensity=beta,
        record_sm_count=4,
        min_measurements=4,
        max_measurements=8,
        rse_check_every=2,
        warmup_kernels=1,
        warmup_kernel_duration_s=0.05,
        measure_kernel_duration_s=0.08,
        delay_iterations=150,
        confirm_iterations=150,
        probe_window_s=0.4,
        settle_chunk_s=0.08,
    )


def run_ablation(intensities=_INTENSITIES, seed=_SEED) -> list[dict]:
    """One small memory-axis campaign per intensity; returns score rows."""
    rows = []
    for beta in intensities:
        machine = make_machine("A100", seed=seed)
        result = run_campaign(machine, _ablation_config(beta))
        n_pairs = len(result.pairs)
        measured = list(result.iter_measured())
        rel_errors: list[float] = []
        for pair in measured:
            lat = pair.latencies_s()
            truth = pair.ground_truths_s()
            finite = np.isfinite(truth)
            if finite.any():
                rel_errors.extend(
                    np.abs(lat[finite] - truth[finite]) / truth[finite]
                )
        rows.append(
            {
                "memory_intensity": beta,
                "phase1_valid_pairs": (
                    len(result.phase1.valid_pairs)
                    if result.phase1 is not None
                    else 0
                ),
                "measured_pairs": len(measured),
                "total_pairs": n_pairs,
                "median_rel_error": (
                    round(float(np.median(rel_errors)), 4)
                    if rel_errors
                    else None
                ),
            }
        )
    return rows


def test_memory_intensity_ablation():
    rows = run_ablation()
    by_beta = {row["memory_intensity"]: row for row in rows}

    # beta = 0: the methodology's phase-1 guard rejects everything.
    assert by_beta[0.0]["phase1_valid_pairs"] == 0
    assert by_beta[0.0]["measured_pairs"] == 0

    # High beta: the full pair set measures with small errors.
    strong = by_beta[0.70]
    assert strong["measured_pairs"] == strong["total_pairs"] == 6
    assert strong["median_rel_error"] < 0.15

    # Tiny-but-nonzero beta passes phase 1 yet mis-detects massively —
    # the regime the default intensity must stay far away from.
    weak = by_beta[0.01]
    if weak["median_rel_error"] is not None:
        assert weak["median_rel_error"] > 2 * strong["median_rel_error"]

    update_bench_json(
        {
            "memory_intensity_ablation": {
                "benchmark": (
                    "A100 memory-axis campaign (3 HBM P-states, 6 pairs) "
                    "per kernel memory_intensity"
                ),
                "seed": _SEED,
                "memory_ladder_mhz": list(_MEMORY_LADDER),
                "rows": rows,
            }
        }
    )
