"""E-V1: ground-truth recovery — the simulator-only validation axis.

On physical hardware the methodology's output cannot be checked against
the true switching latency; here every transition's injected latency is
known.  This bench scores the full pipeline (sync -> delay -> detection ->
confirmation -> outlier filter) on all three GPU campaigns.
"""


from repro.analysis.validation import score_recovery


def test_ground_truth_recovery(benchmark, all_campaigns):
    reports = benchmark(lambda: [score_recovery(c) for c in all_campaigns])

    print("\nE-V1: methodology recovery against injected ground truth")
    for report in reports:
        for line in report.summary_lines():
            print(f"  {line}")

    for report in reports:
        # The detection bias is the iteration-granularity cost: positive
        # (an upper-bound methodology) and below ~10 workload iterations.
        assert -1e-3 < report.overall_bias_s < 2e-3
        # Relative recovery error: median under 15 % on every device.
        assert report.overall_median_rel_error < 0.15
        # Worst absolute error bounded by the adaptation-ramp cap plus
        # granularity.
        assert report.worst_abs_error_s < 0.04
        # The outlier filter finds most separable injected outliers
        # without flooding false positives.
        assert report.outlier_recall > 0.6
