"""E-S2: Sec. VII's CPU-vs-GPU comparison.

"Several studies presenting the transition latency of modern Intel and AMD
CPUs show that CPUs complete the frequency transitions in microseconds, or
units of milliseconds at most, while GPUs require significantly more time,
ranging from tens to hundreds of milliseconds."
"""

import numpy as np

from repro.analysis.paper_reference import CPU_TRANSITION_RANGE_MS
from repro.ftalat import CpuCore, FtalatConfig, run_ftalat
from repro.simtime.clock import VirtualClock
from repro.simtime.host import HostCpu


def run_cpu_campaign():
    clock = VirtualClock()
    host = HostCpu(clock, rng=np.random.default_rng(77))
    core = CpuCore(host)
    return run_ftalat(
        core, (1200.0, 1800.0, 2400.0, 3100.0), FtalatConfig(repeats=8)
    )


def test_cpu_vs_gpu_latency_regimes(benchmark, all_campaigns):
    cpu = benchmark(run_cpu_campaign)
    cpu_ms = cpu.all_latencies_s() * 1e3

    print(f"\n{'device':<22} {'n':>5} {'min':>9} {'median':>9} {'max':>9}  [ms]")
    print(
        f"{'CPU (FTaLaT)':<22} {cpu_ms.size:5d} {cpu_ms.min():9.3f} "
        f"{np.median(cpu_ms):9.3f} {cpu_ms.max():9.3f}"
    )
    for campaign in all_campaigns:
        gpu_ms = campaign.all_latencies_s() * 1e3
        print(
            f"{campaign.gpu_name:<22} {gpu_ms.size:5d} {gpu_ms.min():9.3f} "
            f"{np.median(gpu_ms):9.3f} {gpu_ms.max():9.3f}"
        )

    # CPU transitions: microseconds to units of milliseconds.
    lo_ms, hi_ms = CPU_TRANSITION_RANGE_MS
    assert cpu_ms.min() >= lo_ms / 10
    assert cpu_ms.max() <= hi_ms
    # Every GPU's median exceeds the CPU median by at least an order of
    # magnitude; GPU worst cases live in the tens-to-hundreds of ms.
    cpu_median = np.median(cpu_ms)
    for campaign in all_campaigns:
        gpu_ms = campaign.all_latencies_s() * 1e3
        assert np.median(gpu_ms) > 10 * cpu_median
        assert gpu_ms.max() > 10.0
