"""E-F5/E-F6: Figs. 5-6 — per-pair switching-latency scatter structure.

Fig. 5 shows a GH200 pair (1770 -> 1260 MHz) whose repeated measurements
form multiple distinct clusters; Fig. 6 shows the common case of one large
cluster with a few scattered outliers.  This bench measures one
pathological and one normal pair deeply (fixed measurement count) and
validates the cluster structure plus the silhouette-score criterion of
Sec. VII-B (score > 0.4 for multi-cluster pairs).
"""

import numpy as np

from repro import LatestConfig, make_machine
from repro.analysis.clusters import scatter_data
from repro.clustering.silhouette import silhouette_score
from repro.core.campaign import LatestBenchmark
from repro.core.phase1 import run_phase1


def _measure_single_pair(model, freqs, pair, seed, n=120):
    machine = make_machine(model, seed=seed)
    config = LatestConfig(
        frequencies=freqs,
        record_sm_count=10,
        min_measurements=n,
        max_measurements=n,
        rse_check_every=n,
        warmup_kernels=1,
        warmup_kernel_duration_s=0.08,
        measure_kernel_duration_s=0.12,
        probe_window_s=0.5,
    )
    bench = LatestBenchmark(machine, config)
    phase1 = run_phase1(bench.bench)
    probe = bench._probe_windows(phase1)
    return bench.measure_pair(pair[0], pair[1], phase1, probe)


def _print_scatter(pair):
    data = scatter_data(pair)
    labels = data["label"]
    print(
        f"\npair {pair.init_mhz:g}->{pair.target_mhz:g} MHz: "
        f"{pair.n_measurements} measurements, {pair.n_clusters} clusters, "
        f"{int((labels == -1).sum())} outliers"
    )
    for c in range(pair.n_clusters):
        values = data["latency_ms"][labels == c]
        print(
            f"  cluster {c}: n={values.size:3d} "
            f"median={np.median(values):8.2f} ms "
            f"[{values.min():8.2f}, {values.max():8.2f}]"
        )


def test_fig5_multi_cluster_pair(benchmark):
    """A GH200 transition into the 1260 MHz special band (the paper's
    Fig. 5 pair is 1770->1260)."""
    pair = benchmark.pedantic(
        _measure_single_pair,
        args=("GH200", (1770.0, 1260.0), (1770.0, 1260.0), 42),
        rounds=1,
        iterations=1,
    )
    _print_scatter(pair)
    assert pair.n_measurements == 120
    assert pair.n_clusters >= 2
    data = scatter_data(pair)
    score = silhouette_score(data["latency_ms"], data["label"])
    print(f"  silhouette score: {score:.3f}")
    assert score > 0.4  # the paper's minimum for multi-cluster pairs
    # Cluster levels must be genuinely distinct (not one split mode):
    medians = sorted(
        np.median(data["latency_ms"][data["label"] == c])
        for c in range(pair.n_clusters)
    )
    assert medians[-1] > 3 * medians[0]


def test_fig6_single_cluster_pair(benchmark):
    """A normal GH200 pair: one large cluster plus scattered outliers."""
    pair = benchmark.pedantic(
        _measure_single_pair,
        args=("GH200", (1305.0, 1845.0), (1305.0, 1845.0), 43),
        rounds=1,
        iterations=1,
    )
    _print_scatter(pair)
    data = scatter_data(pair)
    labels = data["label"]
    sizes = [int((labels == c).sum()) for c in range(pair.n_clusters)]
    # One dominant cluster holding the bulk of the measurements.
    assert max(sizes) > 0.7 * pair.n_measurements
    # Outliers stay a small fraction.
    assert (labels == -1).mean() < 0.15
