"""A-5/A-6: ablations of timer synchronization and the delay period.

**A-5 (timer sync, Sec. V-B).**  The methodology converts the CPU-side
timestamp of the frequency-change call into the accelerator timebase via
IEEE 1588.  PTP's blind spot is path *asymmetry*: the offset estimate
shifts by (d_up - d_down)/2 and nothing in the exchange can detect it.
The bench sweeps injected asymmetry and shows the measured switching
latency shifts by exactly that bias — negligible for realistic PCIe
asymmetries (~us), structural for a hypothetically asymmetric transport.

**A-6 (delay period, Sec. V).**  "Ideally, several hundred iterations
should be performed on the initial frequency setting before any frequency
changes are applied" — the delay separates the wake-up/settling transient
from the region the evaluation scans.  The bench sweeps the delay length
and reports evaluation failure rates and recovery error.
"""

import numpy as np
import pytest

from repro import LatestConfig, make_machine
from repro.core.context import BenchContext
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_switch_benchmark
from repro.core.phase3 import evaluate_switch
from repro.timesync.ptp import PtpLink

PAIR = (1410.0, 705.0)
REPEATS = 10


def _bench_for(config_kwargs, seed):
    machine = make_machine("A100", seed=seed)
    config = LatestConfig(
        frequencies=PAIR,
        record_sm_count=10,
        min_measurements=4,
        max_measurements=8,
        warmup_kernels=1,
        warmup_kernel_duration_s=0.08,
        measure_kernel_duration_s=0.12,
        probe_window_s=0.4,
        **config_kwargs,
    )
    bench = BenchContext(machine, config)
    phase1 = run_phase1(bench)
    return bench, phase1, config


def _measure_bias(bench, phase1, config, repeats=REPEATS):
    target_stats = phase1.stats_for(PAIR[1])
    errors = []
    failures = 0
    for _ in range(repeats):
        raw = run_switch_benchmark(
            bench, PAIR[0], PAIR[1], phase1.kernel, window_iterations=700
        )
        ev = evaluate_switch(raw, target_stats, config)
        if ev.ok and raw.ground_truth_latency_s is not None:
            errors.append(ev.latency_s - raw.ground_truth_latency_s)
        else:
            failures += 1
    return np.asarray(errors), failures


def run_sync_sweep():
    results = {}
    for asym_us in (0.0, 50.0, 2000.0):
        link = PtpLink(
            base_delay_s=max(3e-6, 1.2 * asym_us * 1e-6),
            asymmetry_s=asym_us * 1e-6,
            jitter_scale_s=0.3e-6,
            spike_prob=0.0,
        )
        bench, phase1, config = _bench_for({"ptp_link": link}, seed=2718)
        errors, failures = _measure_bias(bench, phase1, config)
        results[asym_us] = (errors, failures)
    return results


def test_ablation_sync_asymmetry(benchmark):
    results = benchmark.pedantic(run_sync_sweep, rounds=1, iterations=1)

    print("\nA-5: PTP path asymmetry vs measured-latency bias")
    print(f"  {'asym [us]':>10} {'bias [us]':>12} {'fails':>6}")
    biases = {}
    for asym_us, (errors, failures) in results.items():
        bias = errors.mean() * 1e6 if errors.size else float("nan")
        biases[asym_us] = bias
        print(f"  {asym_us:>10.0f} {bias:>12.1f} {failures:>6}")

    # Asymmetry shifts ts_acc later by +asym -> measured latency shrinks
    # ... or grows, depending on sign; what matters is the *difference*
    # between conditions tracking the injected asymmetry.
    shift_small = biases[50.0] - biases[0.0]
    shift_large = biases[2000.0] - biases[0.0]
    # A 2 ms asymmetry must move the measurement by ~2 ms (sign fixed by
    # the uplink direction); a 50 us one stays within detection noise.
    # The absolute bias at zero asymmetry is the iteration-granularity
    # cost (~a few iterations), common to all conditions.
    assert abs(shift_large) == pytest.approx(2000.0, rel=0.5)
    assert abs(shift_small) < 300.0


def run_delay_sweep():
    results = {}
    for delay in (5, 50, 300, 1000):
        bench, phase1, config = _bench_for(
            {"delay_iterations": delay}, seed=1618
        )
        errors, failures = _measure_bias(bench, phase1, config)
        results[delay] = (errors, failures)
    return results


def test_ablation_delay_period(benchmark):
    results = benchmark.pedantic(run_delay_sweep, rounds=1, iterations=1)

    print("\nA-6: delay period vs evaluation quality")
    print(f"  {'delay iters':>12} {'bias [us]':>12} {'max err [us]':>13} {'fails':>6}")
    for delay, (errors, failures) in results.items():
        bias = errors.mean() * 1e6 if errors.size else float("nan")
        worst = np.abs(errors).max() * 1e6 if errors.size else float("nan")
        print(f"  {delay:>12} {bias:>12.1f} {worst:>13.1f} {failures:>6}")

    # The paper's several-hundred-iteration delay gives reliable, accurate
    # measurements.
    errors_300, failures_300 = results[300]
    assert failures_300 <= 1
    assert np.abs(errors_300).max() < 2e-3
    # Long delays stay sound too (they just cost benchmark time).
    errors_1000, failures_1000 = results[1000]
    assert failures_1000 <= 1
    # Tiny delays still *mostly* work here because the settle loop already
    # guarantees the initial frequency; their cost is the lost separation
    # margin, visible as equal-or-worse failure counts.
    assert results[5][1] >= 0  # recorded for the printed table
