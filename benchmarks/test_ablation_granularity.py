"""A-3: ablation of the workload iteration size (paper Sec. V).

"The workload iteration must be as tiny as possible since its runtime
determines the granularity at which it is possible to measure the
frequency switching latency" — yet iterations must stay long enough for
frequency differences to exceed timer quantization and noise.  This bench
sweeps the per-iteration duration and measures the detection error against
the injected ground truth, exposing both failure directions.
"""

import numpy as np

from repro import LatestConfig, make_machine
from repro.core.context import BenchContext
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_switch_benchmark
from repro.core.phase3 import evaluate_switch

PAIR = (1410.0, 975.0)
ITERATION_SIZES_US = (10.0, 30.0, 60.0, 150.0, 400.0)
REPEATS = 8


def run_sweep():
    rows = []
    for iter_us in ITERATION_SIZES_US:
        machine = make_machine("A100", seed=1000 + int(iter_us))
        config = LatestConfig(
            frequencies=PAIR,
            record_sm_count=10,
            min_measurements=4,
            max_measurements=8,
            iteration_duration_s=iter_us * 1e-6,
            warmup_kernels=1,
            warmup_kernel_duration_s=0.08,
            measure_kernel_duration_s=0.12,
            probe_window_s=0.4,
        )
        bench = BenchContext(machine, config)
        phase1 = run_phase1(bench)
        if not phase1.is_valid_pair(*PAIR):
            rows.append((iter_us, None, None, 0))
            continue
        target_stats = phase1.stats_for(PAIR[1])
        window = max(100, int(0.060 / (iter_us * 1e-6)))
        errors = []
        ok = 0
        for _ in range(REPEATS):
            raw = run_switch_benchmark(
                bench, PAIR[0], PAIR[1], phase1.kernel, window
            )
            ev = evaluate_switch(raw, target_stats, config)
            if ev.ok and raw.ground_truth_latency_s is not None:
                ok += 1
                errors.append(ev.latency_s - raw.ground_truth_latency_s)
        rows.append(
            (
                iter_us,
                float(np.mean(errors)) if errors else None,
                float(np.max(np.abs(errors))) if errors else None,
                ok,
            )
        )
    return rows


def test_ablation_iteration_granularity(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\nA-3: iteration size vs detection error (A100, 1410->975 MHz)")
    print(f"  {'iter [us]':>10} {'bias [us]':>12} {'max err [us]':>13} {'ok':>4}")
    for iter_us, bias, max_err, ok in rows:
        bias_s = f"{bias * 1e6:12.1f}" if bias is not None else "           -"
        err_s = f"{max_err * 1e6:13.1f}" if max_err is not None else "            -"
        print(f"  {iter_us:>10.0f} {bias_s} {err_s} {ok:>4}")

    by_size = {r[0]: r for r in rows}
    # Mid-range iteration sizes detect reliably.
    for size in (30.0, 60.0, 150.0):
        assert by_size[size][3] >= REPEATS - 1, f"{size} us failed"
    # Detection bias is essentially an upper bound: undershoot is bounded
    # by the adaptation-ramp window (in-ramp detections the confirmation
    # test cannot always reject), overshoot by the iteration granularity.
    measured = [(s, b) for s, b, _, ok in rows if b is not None and ok > 0]
    biases = {s: b for s, b in measured}
    assert all(b > -2e-3 for b in biases.values())
    # The granularity cost grows with the iteration size (the paper's
    # "as tiny as possible" guidance).
    if 30.0 in biases and 400.0 in biases:
        assert biases[400.0] > biases[30.0]
