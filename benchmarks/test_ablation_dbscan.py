"""A-2: ablation of the adaptive DBSCAN parameter descent (Algorithm 3).

Compares the paper's adaptive min_pts descent (4 % -> 2 % of the dataset,
eps = 0.15 x the 5-95 quantile range) against fixed-parameter DBSCAN on
synthetic latency datasets with known ground truth (mixture structure +
injected outliers), scoring outlier precision/recall and the false-outlier
rate the adaptive objective exists to minimize.
"""

import numpy as np

from repro.clustering.adaptive import AdaptiveDbscanConfig, adaptive_dbscan
from repro.clustering.dbscan import dbscan
from repro.stats.descriptive import quantile_range


def make_dataset(rng, n=300, n_out=8, clusters=((6e-3, 0.2e-3, 0.8), (150e-3, 4e-3, 0.2))):
    """Latency-like mixture with labelled injected outliers."""
    values, is_outlier = [], []
    for _ in range(n):
        mean, std, _ = clusters[
            int(rng.random() > clusters[0][2]) if len(clusters) > 1 else 0
        ]
        values.append(rng.normal(mean, std))
        is_outlier.append(False)
    for _ in range(n_out):
        values.append(0.4 + rng.exponential(0.3))
        is_outlier.append(True)
    values = np.asarray(values)
    is_outlier = np.asarray(is_outlier)
    perm = rng.permutation(values.size)
    return values[perm], is_outlier[perm]


def score(mask_pred, mask_true):
    tp = (mask_pred & mask_true).sum()
    fp = (mask_pred & ~mask_true).sum()
    fn = (~mask_pred & mask_true).sum()
    precision = tp / max(tp + fp, 1)
    recall = tp / max(tp + fn, 1)
    return precision, recall


def run_ablation(n_datasets=20):
    rng = np.random.default_rng(2025)
    results = {"adaptive": [], "fixed-tight": [], "fixed-loose": []}
    for _ in range(n_datasets):
        values, truth = make_dataset(rng)
        qr = quantile_range(values)

        adaptive = adaptive_dbscan(values, AdaptiveDbscanConfig())
        results["adaptive"].append(score(adaptive.outlier_mask, truth))

        # Fixed alternatives: a tight eps that fragments clusters into
        # false outliers, and a loose eps that swallows true outliers.
        tight = dbscan(values, eps=0.02 * qr, min_pts=12)
        results["fixed-tight"].append(score(tight.noise_mask, truth))
        loose = dbscan(values, eps=1.5 * qr, min_pts=4)
        results["fixed-loose"].append(score(loose.noise_mask, truth))
    return results


def test_ablation_adaptive_dbscan(benchmark):
    results = benchmark(run_ablation)

    print("\nA-2: outlier detection quality (mean over 20 datasets)")
    means = {}
    for name, scores in results.items():
        p = np.mean([s[0] for s in scores])
        r = np.mean([s[1] for s in scores])
        means[name] = (p, r)
        print(f"  {name:<14} precision={p:5.2f} recall={r:5.2f}")

    p_a, r_a = means["adaptive"]
    # The adaptive descent keeps both precision and recall high.
    assert p_a > 0.8
    assert r_a > 0.8
    # The tight fixed configuration floods false outliers (low precision);
    # the loose one misses true outliers (low recall).
    assert means["fixed-tight"][0] < p_a
    assert means["fixed-loose"][1] < r_a
