"""E-F7/E-F8: Figs. 7-8 — manufacturing variability of four A100 units.

Regenerates the per-pair range (max - min across units) of the best-case
(Fig. 7) and worst-case (Fig. 8) switching latencies for four simulated
A100s on one node, and asserts the paper's observations: best-case ranges
are tiny (sub-ms), worst-case ranges reach several ms on a few pairs, and
transitions are "not entirely uniform across hardware instances".
"""

import numpy as np

from repro.analysis.render import render_matrix
from repro.analysis.variability import variability_report


def test_fig7_min_ranges(benchmark, a100_unit_campaigns):
    report = benchmark(lambda: variability_report(a100_unit_campaigns))
    grid = report.range_matrix_ms("min")
    print("\nFig. 7: ranges of minimum switching latencies, 4x A100 [ms]")
    print(
        render_matrix(
            grid,
            report.frequencies_mhz,
            report.frequencies_mhz,
            corner="init\\tgt",
            fmt="{:8.3f}",
        )
    )
    finite = grid[np.isfinite(grid)]
    assert finite.size >= 20
    # Paper Fig. 7: best-case ranges are fractions of a millisecond
    # (0.01-1.03 ms); they must be non-zero (units differ) yet small.
    assert np.median(finite) < 1.5
    assert finite.max() < 6.0
    assert (finite > 0).all()


def test_fig8_max_ranges(benchmark, a100_unit_campaigns):
    report = benchmark(lambda: variability_report(a100_unit_campaigns))
    grid = report.range_matrix_ms("max")
    print("\nFig. 8: ranges of maximum switching latencies, 4x A100 [ms]")
    print(
        render_matrix(
            grid,
            report.frequencies_mhz,
            report.frequencies_mhz,
            corner="init\\tgt",
            fmt="{:8.3f}",
        )
    )
    finite = grid[np.isfinite(grid)]
    # Paper Fig. 8: typical ranges of a few ms, occasional ~13 ms spikes.
    assert 0.3 < np.median(finite) < 8.0
    assert finite.max() > 2.0
    # Worst-case variability exceeds best-case variability.
    min_grid = report.range_matrix_ms("min")
    assert np.nanmedian(finite) > np.nanmedian(
        min_grid[np.isfinite(min_grid)]
    )
