"""A-1: ablation of the detection criterion (paper Sec. V-A).

The paper replaces FTaLaT's confidence-interval acceptance band with a
two-standard-deviation band because thousands of concurrent GPU threads
drive the standard error (and hence the CI width) below the device timer
granularity.  This bench measures the same frequency pair with both
criteria and quantifies the failure: detection success rate and wasted
attempts.
"""

import dataclasses


from repro import LatestConfig, make_machine
from repro.core.context import BenchContext
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_switch_benchmark
from repro.core.phase3 import detection_band, evaluate_switch

PAIR = (1410.0, 975.0)  # target duration not tick-aligned (86.77 us)
N_ATTEMPTS = 20


def run_ablation():
    machine = make_machine("A100", seed=314)
    config = LatestConfig(
        frequencies=PAIR,
        record_sm_count=12,
        min_measurements=4,
        max_measurements=8,
        warmup_kernels=1,
        warmup_kernel_duration_s=0.08,
        measure_kernel_duration_s=0.12,
        probe_window_s=0.4,
    )
    bench = BenchContext(machine, config)
    phase1 = run_phase1(bench)
    target_stats = phase1.stats_for(PAIR[1])
    cfg_ci = dataclasses.replace(
        config, detection_criterion="confidence-interval"
    )

    outcomes = {"two-sigma": [], "confidence-interval": []}
    for _ in range(N_ATTEMPTS):
        raw = run_switch_benchmark(
            bench, PAIR[0], PAIR[1], phase1.kernel, window_iterations=800
        )
        for name, cfg in (("two-sigma", config), ("confidence-interval", cfg_ci)):
            ev = evaluate_switch(raw, target_stats, cfg)
            outcomes[name].append(ev)
    return phase1, target_stats, outcomes, config, cfg_ci


def test_ablation_detection_criterion(benchmark):
    phase1, target_stats, outcomes, cfg2s, cfgci = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    band2s = detection_band(target_stats, cfg2s)
    bandci = detection_band(target_stats, cfgci)
    print("\nA-1: detection criterion ablation (A100, 1410->975 MHz)")
    print(
        f"  samples behind target stats: n={target_stats.n} "
        f"(std {target_stats.std * 1e6:.2f} us, "
        f"stderr {target_stats.stderr * 1e9:.1f} ns)"
    )
    print(
        f"  two-sigma band width: {(band2s[1] - band2s[0]) * 1e6:8.3f} us"
    )
    print(
        f"  CI band width:        {(bandci[1] - bandci[0]) * 1e9:8.3f} ns "
        "(vs 1000 ns timer tick)"
    )
    for name, evs in outcomes.items():
        ok = sum(1 for e in evs if e.ok)
        print(f"  {name:<22} success {ok}/{len(evs)}")

    # The 2-sigma band spans more than a timer tick; the CI band is far
    # below one (it cannot contain any representable diff value).
    assert (band2s[1] - band2s[0]) > 1.5e-6
    assert (bandci[1] - bandci[0]) < 1e-6

    ok_2s = sum(1 for e in outcomes["two-sigma"] if e.ok)
    ok_ci = sum(1 for e in outcomes["confidence-interval"] if e.ok)
    # The paper's criterion succeeds essentially always; the CI criterion
    # starves.
    assert ok_2s >= 0.9 * N_ATTEMPTS
    assert ok_ci <= 0.2 * N_ATTEMPTS
