"""Service front-end overhead: the asyncio event bridge, measured.

The service republishes every campaign event from the emitting worker
thread onto the event loop (``EventBroadcast.publish`` →
``call_soon_threadsafe`` → subscriber queues).  This benchmark records
what that bridge sustains in events/s against the baseline every other
tier uses — a direct synchronous ``on_event`` call — plus the
end-to-end wall-clock cost of running one campaign through
:class:`~repro.service.service.CampaignService` versus the engine it
wraps.  Rows land in ``BENCH_campaign.json`` under
``service_event_bridge``.
"""

from __future__ import annotations

import asyncio
import time

from benchmarks.conftest import update_bench_json
from repro import LatestConfig, make_machine, run_campaign
from repro.core.stream import PairRetried, RecordingSink
from repro.service.bridge import EventBroadcast
from repro.service.requests import CampaignRequest
from repro.service.service import CampaignService

N_EVENTS = 50_000

#: one small A100 campaign, shared by the wall-clock comparison
_CONFIG = dict(
    frequencies=(705.0, 1095.0, 1410.0),
    record_sm_count=8,
    min_measurements=10,
    max_measurements=16,
    rse_check_every=4,
)


def _direct_events_per_s() -> float:
    """Baseline: synchronous sink delivery on the emitting thread."""
    sink = RecordingSink()
    event = PairRetried(indices=(0,), attempt=1, cause="bench")
    begin = time.perf_counter()
    for _ in range(N_EVENTS):
        sink.on_event(event)
    elapsed = time.perf_counter() - begin
    assert len(sink.events) == N_EVENTS
    return N_EVENTS / elapsed


def _bridge_events_per_s() -> float:
    """Thread → loop → subscriber, the service's delivery path."""
    event = PairRetried(indices=(0,), attempt=1, cause="bench")

    async def main() -> float:
        loop = asyncio.get_event_loop()
        broadcast = EventBroadcast(loop)
        queue = broadcast.subscribe()

        def produce():
            for _ in range(N_EVENTS):
                broadcast.publish(event)
            broadcast.close()

        begin = time.perf_counter()
        producer = loop.run_in_executor(None, produce)
        received = 0
        while await queue.get() is not None:
            received += 1
        elapsed = time.perf_counter() - begin
        await producer
        assert received == N_EVENTS
        return N_EVENTS / elapsed

    return asyncio.run(main())


def test_service_event_bridge_overhead():
    """Record bridge vs direct events/s and service vs engine wall."""
    direct = _direct_events_per_s()
    bridge = _bridge_events_per_s()

    begin = time.perf_counter()
    engine_result = run_campaign(
        make_machine("A100", seed=4), LatestConfig(**_CONFIG), workers=1
    )
    engine_wall = time.perf_counter() - begin

    async def service_run():
        service = CampaignService(fleet_size=2, shard_pairs=2)
        await service.start()
        campaign_id = await service.submit(
            CampaignRequest(
                seed=4,
                config={
                    k: list(v) if isinstance(v, tuple) else v
                    for k, v in _CONFIG.items()
                },
            )
        )
        result = await service.result(campaign_id)
        await service.stop()
        return result

    begin = time.perf_counter()
    service_result = asyncio.run(service_run())
    service_wall = time.perf_counter() - begin

    # the front end must not change the measurements
    assert service_result.wall_virtual_s == engine_result.wall_virtual_s

    update_bench_json(
        {
            "service_event_bridge": {
                "n_events": N_EVENTS,
                "direct_sink_events_per_s": round(direct),
                "asyncio_bridge_events_per_s": round(bridge),
                "bridge_slowdown_x": round(direct / bridge, 2),
                "campaign_engine_wall_s": round(engine_wall, 3),
                "campaign_service_wall_s": round(service_wall, 3),
                "service_overhead_pct": round(
                    100.0 * (service_wall / engine_wall - 1.0), 2
                ),
                "note": "bridge = EventBroadcast.publish from a worker "
                "thread through call_soon_threadsafe to one subscriber "
                "queue; direct = synchronous RecordingSink.on_event. "
                "Campaign walls compare one 6-pair A100 campaign "
                "(engine workers=1 vs CampaignService fleet=2).",
            }
        }
    )
