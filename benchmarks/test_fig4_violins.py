"""E-F4: Fig. 4 — switching-latency distributions, increasing vs
decreasing transitions (violin plots).

Regenerates the per-pair worst-case distributions split by direction for
all three GPUs and asserts the published qualitative findings:

* RTX Quadro 6000 shows the highest variability with multiple regions of
  frequent values (multimodal violins),
* A100 latencies clump tightly around the mean,
* GH200 reaches the highest maxima, yet most worst cases stay below
  100 ms (predictability).
"""

import numpy as np

from repro.analysis.distributions import split_by_direction


def _print_violin(name, split):
    for side, violin in (
        ("increasing", split.increasing),
        ("decreasing", split.decreasing),
    ):
        q25, q50, q75 = violin.quantiles_ms()
        print(
            f"{name:>18} {side:<11} n={violin.values_ms.size:3d} "
            f"min={violin.stats.minimum:8.2f} q25={q25:8.2f} "
            f"med={q50:8.2f} q75={q75:8.2f} max={violin.stats.maximum:8.2f} "
            f"modes~{violin.modality_count()}"
        )


def test_fig4_violins(benchmark, all_campaigns):
    splits = benchmark(
        lambda: [split_by_direction(c, "max") for c in all_campaigns]
    )
    print("\nFig. 4: worst-case switching latency by direction [ms]")
    for campaign, split in zip(all_campaigns, splits):
        _print_violin(campaign.gpu_name, split)

    by_name = {s.gpu_name: s for s in splits}
    rtx = by_name["RTX Quadro 6000"]
    a100 = by_name["A100 SXM-4"]
    gh200 = by_name["GH200"]

    # RTX: widest distributions and multimodal structure.
    rtx_spread = max(
        rtx.increasing.stats.std, rtx.decreasing.stats.std
    )
    a100_spread = max(
        a100.increasing.stats.std, a100.decreasing.stats.std
    )
    assert rtx_spread > 5 * a100_spread
    assert max(
        rtx.increasing.modality_count(), rtx.decreasing.modality_count()
    ) >= 2

    # A100: tightly clumped around the mean on both sides.
    for violin in (a100.increasing, a100.decreasing):
        assert violin.stats.std < 0.5 * violin.stats.mean

    # GH200: the single highest values of the three GPUs, but the bulk of
    # the worst cases below 100 ms.
    gh200_max = max(
        gh200.increasing.stats.maximum, gh200.decreasing.stats.maximum
    )
    rtx_max = max(
        rtx.increasing.stats.maximum, rtx.decreasing.stats.maximum
    )
    a100_max = max(
        a100.increasing.stats.maximum, a100.decreasing.stats.maximum
    )
    assert gh200_max > a100_max
    all_gh200 = np.concatenate(
        [gh200.increasing.values_ms, gh200.decreasing.values_ms]
    )
    assert np.median(all_gh200) < 100.0
