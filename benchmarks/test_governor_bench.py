"""A-4: the latency-aware governor use case (paper Sec. VIII).

Uses the GH200 campaign's measured worst-case latency table to drive DVFS
policies over a synthetic phase-changing application, quantifying the two
benefits the paper predicts: better switch timing (skip phases shorter
than the transition) and avoidance of pathological frequency pairs.
"""


from repro.governor import (
    LatencyAwareGovernor,
    LatencyTable,
    NaiveGovernor,
    OracleGovernor,
    StaticGovernor,
    make_phased_application,
    simulate_governor,
)
from repro.gpusim.spec import GH200


def run_comparison(gh200_campaign):
    table = LatencyTable.from_campaign(gh200_campaign, statistic="max")
    # Memory-bound phases prefer ~64 % of the max clock, which lands on
    # the pathological 1260 MHz target band.
    app = make_phased_application(
        GH200, n_phases=120, seed=17, memory_optimal_ratio=0.636
    )
    static = simulate_governor(app, StaticGovernor(max(table.frequencies_mhz)))
    naive = simulate_governor(app, NaiveGovernor(table))
    aware = simulate_governor(app, LatencyAwareGovernor(table))
    oracle = simulate_governor(app, OracleGovernor(table))
    return table, app, static, naive, aware, oracle


def test_governor_use_case(benchmark, gh200_campaign):
    table, app, static, naive, aware, oracle = benchmark.pedantic(
        run_comparison, args=(gh200_campaign,), rounds=1, iterations=1
    )

    print("\nA-4: governor comparison on GH200 latency table")
    print(
        f"  {'governor':>15} {'time s':>9} {'energy J':>10} {'switches':>9} "
        f"{'stale s':>9}"
    )
    for run in (static, naive, aware, oracle):
        print(
            f"  {run.governor_name:>15} {run.total_time_s:9.2f} "
            f"{run.total_energy_j:10.1f} {run.n_switches:9d} "
            f"{run.stale_time_s:9.3f}"
        )
    print(
        f"  energy savings vs static: naive "
        f"{naive.energy_savings_vs(static) * 100:+.1f}%, aware "
        f"{aware.energy_savings_vs(static) * 100:+.1f}%"
    )

    # DVFS saves energy over static max-clock operation.
    assert aware.energy_savings_vs(static) > 0.03
    # The aware governor avoids switches the naive one wastes.
    assert aware.n_switches < naive.n_switches
    # And spends less time off its requested frequency.
    assert aware.stale_time_s < naive.stale_time_s
    # Awareness does not cost meaningful runtime vs naive.
    assert aware.total_time_s < naive.total_time_s * 1.02
    # The energy x delay product improves.
    assert (
        aware.total_energy_j * aware.total_time_s
        < naive.total_energy_j * naive.total_time_s
    )
    # The oracle (duration-clairvoyant) bounds every heuristic.
    assert (
        oracle.total_energy_j * oracle.total_time_s
        <= aware.total_energy_j * aware.total_time_s * 1.02
    )
