"""E-F9: Fig. 9 — per-unit boxplots of the highest-spread pairs.

The paper selects the frequency pairs with the largest cross-unit spread
and shows per-device boxplots, concluding that "no single hardware
instance consistently exhibits worse than others".
"""

import numpy as np

from repro.analysis.variability import variability_report


def test_fig9_boxplots(benchmark, a100_unit_campaigns):
    report = benchmark(lambda: variability_report(a100_unit_campaigns))
    top = report.top_spread_pairs(3, case="max")

    print("\nFig. 9: highest-spread pairs across four A100 units")
    for spread in top:
        init, target = spread.key
        print(f"\n  {init:g} -> {target:g} MHz")
        for unit, campaign in enumerate(a100_unit_campaigns):
            values = campaign.pair(init, target).latencies_s() * 1e3
            q1, med, q3 = np.percentile(values, [25, 50, 75])
            print(
                f"    unit {unit}: n={values.size:3d} "
                f"min={values.min():7.2f} q1={q1:7.2f} med={med:7.2f} "
                f"q3={q3:7.2f} max={values.max():7.2f}"
            )

    assert len(top) == 3
    assert top[0].range_ms >= top[1].range_ms >= top[2].range_ms

    # The paper's conclusion: no unit is consistently the slowest.
    hist = report.slowest_unit_histogram("max")
    print(f"\n  slowest-unit histogram over all pairs: {list(hist)}")
    assert report.consistently_slowest_unit("max") is None
    # Every unit is slowest somewhere (variability is idiosyncratic).
    assert (hist > 0).sum() >= 2
