"""E-F3: Fig. 3 — min/max switching-latency heatmaps.

Regenerates the four published heatmaps (GH200 min, GH200 max, A100 max,
RTX max) on 8-frequency subsets of the paper's axes, prints them, and
asserts the structural observations of Sec. VII:

* the *target* frequency dominates the pattern (column structure),
* GH200: special target bands (1170/1260/1875 MHz) are slow, minima are
  otherwise flat around 5-7 ms,
* A100: decreasing to low targets is the slow corner, values < 25 ms,
* RTX: mid-band target plateau at ~136 ms, 930/990 MHz plateau at
  ~237 ms, fast band edges.
"""

import numpy as np

from repro.analysis.heatmap import heatmap_from_campaign
from repro.analysis.render import render_heatmap


def _col(grid, freq):
    return grid.values_ms[:, grid.frequencies_mhz.index(freq)]


def _row(grid, freq):
    return grid.values_ms[grid.frequencies_mhz.index(freq), :]


def test_fig3a_gh200_min_heatmap(benchmark, gh200_campaign):
    grid = benchmark(lambda: heatmap_from_campaign(gh200_campaign, "min"))
    print()
    print(render_heatmap(grid))
    # Normal-column minima sit in the flat 4.5-8 ms band of Fig. 3a.
    for f in (705.0, 975.0, 1410.0, 1980.0):
        col = _col(grid, f)
        finite = col[np.isfinite(col)]
        assert (finite > 3.0).all() and (np.median(finite) < 9.0)
    # At least one special target column shows elevated minima somewhere
    # (pairs whose fast mode is absent, e.g. 705->1170 = 62.7 ms in the
    # paper).
    specials = np.concatenate(
        [_col(grid, 1170.0), _col(grid, 1260.0), _col(grid, 1875.0)]
    )
    assert np.nanmax(specials) > 20.0


def test_fig3b_gh200_max_heatmap(benchmark, gh200_campaign):
    grid = benchmark(lambda: heatmap_from_campaign(gh200_campaign, "max"))
    print()
    print(render_heatmap(grid))
    # Special target columns reach hundreds of ms.
    special_max = max(
        np.nanmax(_col(grid, 1260.0)), np.nanmax(_col(grid, 1875.0))
    )
    assert special_max > 150.0
    # Normal columns stay below ~40 ms except via unstable-init rows.
    normal = _col(grid, 1980.0)
    assert np.nanmedian(normal) < 40.0
    # Target structure dominates (the paper's "visible row pattern").
    assert grid.target_dominance_ratio() > 1.0


def test_fig3c_a100_max_heatmap(benchmark, a100_campaign):
    grid = benchmark(lambda: heatmap_from_campaign(a100_campaign, "max"))
    print()
    print(render_heatmap(grid))
    finite = grid.finite_values
    # Everything under ~35 ms ("values consistently below 25 ms" + slack).
    assert np.nanmax(finite) < 40.0
    # Decreasing-to-low-target corner is the slow region (paper: 20-22 ms
    # at e.g. 1125->795); compare low-target-decreasing cells vs others.
    freqs = grid.frequencies_mhz
    low_dec, rest = [], []
    for i, fi in enumerate(freqs):
        for j, fj in enumerate(freqs):
            v = grid.values_ms[i, j]
            if not np.isfinite(v):
                continue
            (low_dec if (fj < fi and fj <= 1020.0) else rest).append(v)
    assert np.median(low_dec) > np.median(rest)


def test_fig3d_rtx_max_heatmap(benchmark, rtx_campaign):
    grid = benchmark(lambda: heatmap_from_campaign(rtx_campaign, "max"))
    print()
    print(render_heatmap(grid))
    # The ~237 ms plateau: uniform on the 990 MHz column, alternating by
    # initial frequency on the 930 MHz column (paper Fig. 3d).
    col990 = _col(grid, 990.0)
    assert np.nanmedian(col990) > 150.0
    col930 = _col(grid, 930.0)
    finite930 = col930[np.isfinite(col930)]
    assert (finite930 > 150.0).any() or np.nanmedian(col990) > 150.0
    # The ~136 ms mid-band plateau.
    mid = np.concatenate([_col(grid, 1110.0), _col(grid, 1290.0)])
    assert 100.0 < np.nanmedian(mid) < 200.0
    # Fast band edges (750 and 1650 MHz targets).
    edges = np.concatenate([_col(grid, 750.0), _col(grid, 1650.0)])
    assert np.nanmedian(edges) < 60.0
    # Target dominance: the column bands define the RTX heatmap.
    assert grid.target_dominance_ratio() > 1.0
