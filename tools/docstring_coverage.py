#!/usr/bin/env python
"""Docstring-coverage gate — an ``interrogate`` stand-in on ``ast``.

Counts the public API surface of the given files/directories — module
docstrings, public classes, and public functions/methods (dunders and
``_private`` names excluded, as are defs nested inside functions) —
and fails when the documented fraction is below ``--min``.

Usage::

    python tools/docstring_coverage.py src/repro/service src/repro/core/stream.py --min 100

Exit code 0 when coverage >= the threshold, 1 otherwise (missing
docstrings are listed either way).
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

__all__ = ["FileCoverage", "measure_file", "main"]


class FileCoverage:
    """Documented/total counts plus the missing definitions of one file."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.total = 0
        self.documented = 0
        self.missing: list[str] = []

    def count(self, name: str, node, lineno: int) -> None:
        """Record one public definition and whether it has a docstring."""
        self.total += 1
        if ast.get_docstring(node):
            self.documented += 1
        else:
            self.missing.append(f"{self.path}:{lineno}: {name}")


def _public(name: str) -> bool:
    return not name.startswith("_")


def measure_file(path: Path) -> FileCoverage:
    """Docstring coverage of one python file's public surface."""
    coverage = FileCoverage(path)
    tree = ast.parse(path.read_text())
    coverage.count("<module>", tree, 1)

    def walk(node, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _public(child.name):
                    coverage.count(
                        f"{prefix}{child.name}", child, child.lineno
                    )
                    walk(child, f"{prefix}{child.name}.")
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                # nested defs are implementation detail: do not recurse
                if _public(child.name):
                    coverage.count(
                        f"{prefix}{child.name}", child, child.lineno
                    )

    walk(tree, "")
    return coverage


def main(argv: "list[str] | None" = None) -> int:
    """Run the gate over the given targets; 0 iff coverage >= --min."""
    parser = argparse.ArgumentParser(
        description="fail when public docstring coverage drops below --min"
    )
    parser.add_argument(
        "targets", nargs="+", help="python files or package directories"
    )
    parser.add_argument(
        "--min",
        type=float,
        default=100.0,
        dest="minimum",
        help="required documented percentage (default 100)",
    )
    args = parser.parse_args(argv)

    files: list[Path] = []
    for target in args.targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            print(f"ERROR: no such target {target}", file=sys.stderr)
            return 1

    total = documented = 0
    missing: list[str] = []
    for path in files:
        coverage = measure_file(path)
        total += coverage.total
        documented += coverage.documented
        missing.extend(coverage.missing)
        pct = 100.0 * coverage.documented / max(coverage.total, 1)
        print(
            f"{path}: {coverage.documented}/{coverage.total} ({pct:.1f}%)"
        )

    for entry in missing:
        print(f"MISSING: {entry}", file=sys.stderr)
    pct = 100.0 * documented / max(total, 1)
    print(f"TOTAL: {documented}/{total} ({pct:.1f}%) documented")
    if pct < args.minimum:
        print(
            f"FAIL: coverage {pct:.1f}% < required {args.minimum:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
