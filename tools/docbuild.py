#!/usr/bin/env python
"""Build and verify the documentation tree — no external doc toolchain.

The container has no mkdocs/sphinx, so this is the whole docs build:
a small markdown → HTML renderer plus the three checks that keep the
docs honest:

1. **Link check** — every relative link and ``#anchor`` in ``docs/``
   (and the ``DESIGN.md`` redirect stub) resolves to a real file and a
   real heading/anchor.  External ``http(s)`` links are skipped (the
   build must pass offline).
2. **CLI flag coverage** — every option of the ``latest-bench`` and
   ``repro`` argument parsers (subparsers included) appears verbatim
   in ``docs/cli.md``.
3. **Events contract** — the "Ordering & determinism contract" bullets
   in ``docs/events.md`` are word-for-word identical to the
   :mod:`repro.core.stream` module docstring.

Usage::

    PYTHONPATH=src python tools/docbuild.py [--out docs_build] [--check]

``--check`` verifies without writing HTML; the default builds and
verifies.  Exit code 0 = clean, 1 = any failure (all failures are
listed, not just the first).
"""

from __future__ import annotations

import argparse
import html
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

__all__ = [
    "check_cli_flags",
    "check_events_contract",
    "check_links",
    "collect_anchors",
    "render_markdown",
    "main",
]


# ----------------------------------------------------------------------
# markdown rendering
# ----------------------------------------------------------------------
def _slug(text: str) -> str:
    """GitHub-style heading anchor: lowercase, alnum and hyphens only."""
    text = re.sub(r"[`*_]", "", text.strip().lower())
    text = re.sub(r"[^a-z0-9 \-]", "", text)
    return re.sub(r"\s+", "-", text.strip())


def _inline(text: str) -> str:
    """Inline markdown → HTML (code, bold, emphasis, links)."""
    out = []
    # split out code spans first so markup inside them stays literal
    for i, part in enumerate(re.split(r"(``[^`]+``|`[^`]+`)", text)):
        if i % 2:
            code = part[2:-2] if part.startswith("``") else part[1:-1]
            out.append(f"<code>{html.escape(code)}</code>")
            continue
        part = html.escape(part, quote=False)
        part = re.sub(r"\*\*([^*]+)\*\*", r"<strong>\1</strong>", part)
        part = re.sub(r"(?<!\*)\*([^*]+)\*(?!\*)", r"<em>\1</em>", part)
        part = re.sub(
            r"\[([^\]]+)\]\(([^)\s]+)\)",
            lambda m: '<a href="{}">{}</a>'.format(
                re.sub(r"\.md(#|$)", r".html\1", m.group(2)), m.group(1)
            ),
            part,
        )
        out.append(part)
    return "".join(out)


def render_markdown(text: str, title: str = "") -> str:
    """Render one markdown document to a standalone HTML page."""
    body: list[str] = []
    lines = text.splitlines()
    i = 0
    in_list: "str | None" = None

    def close_list():
        nonlocal in_list
        if in_list:
            body.append(f"</{in_list}>")
            in_list = None

    while i < len(lines):
        line = lines[i]
        if line.startswith("```"):
            close_list()
            block = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                block.append(lines[i])
                i += 1
            body.append(
                "<pre><code>%s</code></pre>"
                % html.escape("\n".join(block))
            )
        elif re.match(r"#{1,6} ", line):
            close_list()
            level = len(line) - len(line.lstrip("#"))
            heading = line[level + 1 :]
            body.append(
                '<h{0} id="{1}">{2}</h{0}>'.format(
                    level, _slug(heading), _inline(heading)
                )
            )
        elif re.match(r"\s*<a id=", line):
            close_list()
            body.append(line.strip())
        elif line.startswith("|"):
            close_list()
            rows = []
            while i < len(lines) and lines[i].startswith("|"):
                cells = [c.strip() for c in lines[i].strip("|").split("|")]
                if not re.fullmatch(r"[\s:|\-]+", lines[i]):
                    rows.append(cells)
                i += 1
            i -= 1
            table = ["<table>"]
            for r, cells in enumerate(rows):
                tag = "th" if r == 0 else "td"
                table.append(
                    "<tr>"
                    + "".join(
                        f"<{tag}>{_inline(c)}</{tag}>" for c in cells
                    )
                    + "</tr>"
                )
            table.append("</table>")
            body.append("".join(table))
        elif re.match(r"[-*] ", line):
            if in_list != "ul":
                close_list()
                body.append("<ul>")
                in_list = "ul"
            item = [line[2:]]
            while i + 1 < len(lines) and re.match(r"\s+\S", lines[i + 1]):
                i += 1
                item.append(lines[i].strip())
            body.append(f"<li>{_inline(' '.join(item))}</li>")
        elif re.match(r"\d+\. ", line):
            if in_list != "ol":
                close_list()
                body.append("<ol>")
                in_list = "ol"
            item = [line.split(". ", 1)[1]]
            while i + 1 < len(lines) and re.match(r"\s+\S", lines[i + 1]):
                i += 1
                item.append(lines[i].strip())
            body.append(f"<li>{_inline(' '.join(item))}</li>")
        elif re.fullmatch(r"-{3,}", line):
            close_list()
            body.append("<hr/>")
        elif line.strip():
            close_list()
            para = [line]
            while i + 1 < len(lines) and lines[i + 1].strip() and not re.match(
                r"(#{1,6} |```|\||[-*] |\d+\. |\s*<a id=)", lines[i + 1]
            ):
                i += 1
                para.append(lines[i])
            body.append(f"<p>{_inline(' '.join(para))}</p>")
        else:
            close_list()
        i += 1
    close_list()
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        "<style>body{font-family:sans-serif;max-width:52rem;margin:2rem "
        "auto;padding:0 1rem;line-height:1.5}code,pre{background:#f4f4f4}"
        "pre{padding:.75rem;overflow-x:auto}table{border-collapse:collapse}"
        "th,td{border:1px solid #999;padding:.3rem .6rem;text-align:left}"
        "</style></head><body>" + "\n".join(body) + "</body></html>"
    )


# ----------------------------------------------------------------------
# checks
# ----------------------------------------------------------------------
def collect_anchors(text: str) -> set[str]:
    """Every anchor a page exposes: heading slugs + explicit ids."""
    anchors = set()
    in_code = False
    for line in text.splitlines():
        if line.startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        m = re.match(r"(#{1,6}) (.*)", line)
        if m:
            anchors.add(_slug(m.group(2)))
        for explicit in re.findall(r'<a id="([^"]+)"', line):
            anchors.add(explicit)
    return anchors


def _links(text: str):
    """(target, anchor) of every markdown link, code blocks excluded."""
    in_code = False
    for line in text.splitlines():
        if line.startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for part in re.split(r"(``[^`]+``|`[^`]+`)", line):
            if part.startswith("`"):
                continue
            for m in re.finditer(r"\[[^\]]+\]\(([^)\s]+)\)", part):
                target, _, anchor = m.group(1).partition("#")
                yield target, anchor


def check_links(pages: "dict[Path, str]") -> list[str]:
    """Broken relative links/anchors across a set of markdown pages."""
    errors = []
    anchors = {path: collect_anchors(text) for path, text in pages.items()}
    for path, text in pages.items():
        for target, anchor in _links(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            resolved = (
                path if not target else (path.parent / target).resolve()
            )
            if not resolved.exists():
                errors.append(f"{path}: broken link -> {target}")
                continue
            if anchor:
                known = anchors.get(resolved)
                if known is None and resolved.suffix == ".md":
                    known = collect_anchors(resolved.read_text())
                    anchors[resolved] = known
                if known is not None and anchor not in known:
                    errors.append(
                        f"{path}: broken anchor -> {target}#{anchor}"
                    )
    return errors


def _parser_flags(parser) -> set[str]:
    """All option strings and positional names, subparsers included."""
    import argparse as ap

    flags: set[str] = set()
    for action in parser._actions:
        if isinstance(action, ap._HelpAction):
            continue
        if isinstance(action, ap._SubParsersAction):
            for name, sub in action.choices.items():
                flags.add(name)
                flags |= _parser_flags(sub)
            continue
        if action.option_strings:
            flags |= {
                s for s in action.option_strings if s.startswith("--")
            }
        else:
            flags.add(action.dest)
    return flags


def check_cli_flags(cli_md: str) -> list[str]:
    """Every flag of both console-script parsers must appear in cli.md."""
    from repro.cli import build_parser as bench_parser
    from repro.service.cli import build_parser as service_parser

    errors = []
    for label, parser in (
        ("latest-bench", bench_parser()),
        ("repro", service_parser()),
    ):
        for flag in sorted(_parser_flags(parser)):
            if flag not in cli_md:
                errors.append(
                    f"docs/cli.md: {label} flag `{flag}` is undocumented"
                )
    return errors


def _contract_bullets(text: str) -> str:
    """The contract's bullet block, whitespace-collapsed for comparison."""
    lines = text.splitlines()
    start = None
    for i, line in enumerate(lines):
        if line.strip().startswith("* ``CampaignStarted``"):
            start = i
            break
    if start is None:
        return ""
    block: list[str] = []
    for line in lines[start:]:
        if line.startswith(("* ", "  ")) and line.strip():
            block.append(line.strip())
        elif not line.strip() and block:
            break
    return " ".join(" ".join(block).split())


def check_events_contract(events_md: str) -> list[str]:
    """docs/events.md must carry the stream docstring contract verbatim."""
    import repro.core.stream as stream

    want = _contract_bullets(stream.__doc__)
    got = _contract_bullets(events_md)
    if not want:
        return ["repro/core/stream.py: contract bullets not found"]
    if got != want:
        return [
            "docs/events.md: ordering contract drifted from the "
            "repro.core.stream docstring (update the docs to match)"
        ]
    return []


# ----------------------------------------------------------------------
def main(argv: "list[str] | None" = None) -> int:
    """Build the docs tree and run every check; 0 only when all pass."""
    args = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    args.add_argument(
        "--out",
        default=str(REPO / "docs_build"),
        help="HTML output directory (default docs_build/)",
    )
    args.add_argument(
        "--check",
        action="store_true",
        help="verify only; do not write HTML",
    )
    options = args.parse_args(argv)

    sources = sorted(DOCS.rglob("*.md")) + [REPO / "DESIGN.md"]
    pages = {path: path.read_text() for path in sources}

    errors = check_links(pages)
    errors += check_cli_flags(pages[DOCS / "cli.md"])
    errors += check_events_contract(pages[DOCS / "events.md"])

    if not options.check:
        out = Path(options.out)
        for path, text in pages.items():
            if path.name == "DESIGN.md":
                continue  # redirect stub stays markdown-only
            rel = path.relative_to(DOCS).with_suffix(".html")
            destination = out / rel
            destination.parent.mkdir(parents=True, exist_ok=True)
            title = next(
                (
                    l[2:]
                    for l in text.splitlines()
                    if l.startswith("# ")
                ),
                path.stem,
            )
            destination.write_text(render_markdown(text, title))
        print(f"built {len(pages) - 1} pages -> {out}")

    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} docs error(s)", file=sys.stderr)
        return 1
    print("docs checks passed (links, cli flags, events contract)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
