#!/usr/bin/env python3
"""A fuller campaign: heatmaps and Table II-style summary for one GPU.

Runs the LATEST methodology over an 8-frequency subset of a chosen GPU
(default RTX Quadro 6000, the most erratic device) and renders the Fig. 3
style min/max heatmaps plus the Table II summary block, writing per-pair
CSVs under ./campaign_output.

Run:  python examples/full_campaign_heatmap.py [A100|GH200|RTX6000]
"""

import sys

from repro import LatestConfig, make_machine, run_campaign
from repro.analysis.heatmap import heatmap_from_campaign
from repro.analysis.render import render_heatmap, render_table2
from repro.analysis.summary import summarize_campaign
from repro.gpusim.spec import lookup_spec

SUBSETS = {
    "RTX Quadro 6000": (750.0, 930.0, 990.0, 1110.0, 1290.0, 1470.0, 1560.0, 1650.0),
    "A100 SXM-4": (705.0, 840.0, 975.0, 1095.0, 1215.0, 1290.0, 1350.0, 1410.0),
    "GH200": (705.0, 975.0, 1170.0, 1260.0, 1410.0, 1665.0, 1875.0, 1980.0),
}


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "RTX6000"
    spec = lookup_spec(model)
    frequencies = SUBSETS[spec.name]

    machine = make_machine(model, seed=1234)
    config = LatestConfig(
        frequencies=frequencies,
        record_sm_count=12,
        min_measurements=12,
        max_measurements=30,
        rse_check_every=4,
        output_dir="campaign_output",
    )
    print(
        f"running {len(config.pairs())} frequency pairs on simulated "
        f"{spec.name} ..."
    )
    result = run_campaign(machine, config)

    print()
    print(render_heatmap(heatmap_from_campaign(result, "min")))
    print()
    print(render_heatmap(heatmap_from_campaign(result, "max")))
    print()
    print(render_table2([summarize_campaign(result)]))
    skipped = result.skipped_pairs
    if skipped:
        print(f"\nskipped pairs: {[(p.key, p.skip_reason) for p in skipped]}")
    print(
        f"\n{result.n_measured_pairs} pairs measured over "
        f"{result.wall_virtual_s:.0f} s of simulated device time; CSVs in "
        "./campaign_output"
    )


if __name__ == "__main__":
    main()
