#!/usr/bin/env python3
"""Wake-up latency estimation and per-pair cluster structure.

Two smaller procedures from the paper:

* Sec. V wake-up estimation: how long after an idle period does the GPU
  reach its locked clock?  Estimated by comparing first-kernel iteration
  times against the last kernel's statistics.
* Sec. VII-B cluster structure: repeated measurements of one pathological
  GH200 pair form multiple switching-latency clusters (Fig. 5); a normal
  pair forms a single cluster with a few outliers (Fig. 6).

Run:  python examples/wakeup_and_clusters.py
"""

import numpy as np

from repro import LatestConfig, make_machine
from repro.analysis.clusters import scatter_data
from repro.clustering.silhouette import silhouette_score
from repro.core.campaign import LatestBenchmark
from repro.core.phase1 import run_phase1
from repro.core.wakeup import estimate_wakeup_latency


def main() -> None:
    machine = make_machine("GH200", seed=99)

    # --- wake-up estimation --------------------------------------------
    estimate = estimate_wakeup_latency(machine, freq_mhz=1410.0)
    print(
        f"wake-up to {estimate.freq_mhz:g} MHz: {estimate.wakeup_s * 1e3:.1f} ms "
        f"(stabilized at iteration {estimate.stabilization_iteration}; first "
        f"iterations up to {estimate.slowdown_factor:.1f}x slower than steady "
        "state)"
    )

    # --- cluster structure of one pathological pair --------------------
    config = LatestConfig(
        frequencies=(1410.0, 1875.0),
        record_sm_count=12,
        min_measurements=60,
        max_measurements=60,   # fixed count: we want the full scatter
        rse_check_every=60,
    )
    bench = LatestBenchmark(machine, config)
    phase1 = run_phase1(bench.bench)
    probe = bench._probe_windows(phase1)

    for init, target in ((1410.0, 1875.0), (1875.0, 1410.0)):
        pair = bench.measure_pair(init, target, phase1, probe)
        data = scatter_data(pair)
        labels = data["label"]
        n_clusters = pair.n_clusters
        print(
            f"\npair {init:g}->{target:g} MHz: {pair.n_measurements} "
            f"measurements, {n_clusters} cluster(s), "
            f"{int((labels == -1).sum())} outliers"
        )
        for c in range(n_clusters):
            values = data["latency_ms"][labels == c]
            print(
                f"  cluster {c}: n={values.size:3d} around "
                f"{np.median(values):8.2f} ms"
            )
        if n_clusters >= 2:
            score = silhouette_score(data["latency_ms"], labels)
            print(f"  silhouette score: {score:.2f}")


if __name__ == "__main__":
    main()
