#!/usr/bin/env python3
"""Quickstart: measure switching latencies for a handful of A100 clocks.

Builds a simulated machine with one A100, runs the three-phase LATEST
methodology over three SM frequencies, and prints per-pair statistics with
the injected ground truth next to the measured values — the validation
axis the simulator adds over physical hardware.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LatestConfig, make_machine, run_campaign


def main() -> None:
    machine = make_machine("A100", seed=42)
    config = LatestConfig(
        frequencies=(705.0, 1095.0, 1410.0),
        record_sm_count=16,   # record a subset of SMs to keep this snappy
        min_measurements=15,
        max_measurements=40,
        rse_check_every=5,
    )

    print(f"Running LATEST campaign on simulated {machine.device().spec.name} ...")
    result = run_campaign(machine, config)

    print(
        f"\nphase 1: {len(result.phase1.valid_pairs)} valid pairs, "
        f"{len(result.phase1.rejected_pairs)} rejected "
        f"(workload grown {result.phase1.growth_steps}x)"
    )
    print(f"{'pair':>16} {'n':>4} {'min':>8} {'mean':>8} {'max':>8} {'gt mean':>8}  [ms]")
    for pair in result.iter_measured():
        lat = pair.latencies_s() * 1e3
        gt = pair.ground_truths_s() * 1e3
        print(
            f"{pair.init_mhz:7g}->{pair.target_mhz:7g} {pair.n_measurements:4d} "
            f"{lat.min():8.3f} {lat.mean():8.3f} {lat.max():8.3f} "
            f"{np.nanmean(gt):8.3f}"
        )

    print(
        f"\nsimulated {result.wall_virtual_s:.1f} s of device time; "
        "measured values should track the ground-truth column to within "
        "one workload iteration (~0.1 ms)."
    )


if __name__ == "__main__":
    main()
