#!/usr/bin/env python3
"""Core×memory campaign: one latency heatmap facet per memory clock.

Sweeps the SM switching-latency pair grid at every memory P-state of the
chosen GPU (paper Sec. VII names the memory domain as the next measurement
axis).  Phase 1 re-characterizes at each memory clock — the microbenchmark
kernel is partially memory-bound, so iteration times stretch by the
roofline stall factor at reduced memory clocks — and the analysis renders
one Fig. 3-style heatmap plus one Table II block per facet.

Run:  python examples/core_mem_grid.py [A100|GH200|RTX6000] [workers]
"""

import sys

from repro import LatestConfig, make_machine, run_campaign
from repro.analysis.heatmap import heatmaps_by_memory
from repro.analysis.render import render_heatmap, render_table2
from repro.analysis.summary import summarize_by_memory
from repro.gpusim.spec import lookup_spec

SM_SUBSETS = {
    "RTX Quadro 6000": (750.0, 990.0, 1290.0, 1650.0),
    "A100 SXM-4": (705.0, 975.0, 1215.0, 1410.0),
    "GH200": (705.0, 1170.0, 1665.0, 1980.0),
}


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "A100"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else None
    spec = lookup_spec(model)
    memory_clocks = spec.supported_memory_clocks_mhz[:2]

    machine = make_machine(model, seed=1234)
    config = LatestConfig(
        frequencies=SM_SUBSETS[spec.name],
        memory_frequencies=memory_clocks,
        record_sm_count=12,
        min_measurements=10,
        max_measurements=25,
        rse_check_every=5,
        output_dir="campaign_output_mem",
    )
    print(
        f"running {len(config.pairs())} SM pairs x "
        f"{len(memory_clocks)} memory clocks on simulated {spec.name}"
        + (f" with {workers} workers ..." if workers else " ...")
    )
    result = run_campaign(machine, config, workers=workers)

    for grid in heatmaps_by_memory(result, "max").values():
        print()
        print(render_heatmap(grid))
    for mem, row in summarize_by_memory(result).items():
        print()
        print(f"memory clock {mem:g} MHz:")
        print(render_table2([row]))
    print(
        f"\n{result.n_measured_pairs} grid points measured over "
        f"{result.wall_virtual_s:.0f} s of simulated device time; CSVs in "
        "./campaign_output_mem"
    )


if __name__ == "__main__":
    main()
