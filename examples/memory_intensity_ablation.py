#!/usr/bin/env python3
"""Memory-axis ablation: kernel ``memory_intensity`` vs detection quality.

The memory axis measures memory-clock pair switching latency through the
standard phase-1/2/3 machinery at a locked SM clock.  The only coupling
between the swept clock and the observable — per-iteration kernel time —
is the roofline stall ``(1 - beta) + beta * f_ref / f_mem``, so the
memory-boundedness ``beta`` of the microbenchmark decides whether the
methodology can see the switch at all:

* ``beta = 0``  — phase 1 rejects every pair (indistinguishable);
* tiny ``beta`` — pairs validate, but detections land in noise;
* large ``beta`` — errors against the injected ground truth drop to a
  few percent (the axis default is 0.70).

Run:  python examples/memory_intensity_ablation.py [A100|GH200|RTX6000]
"""

import sys

import numpy as np

from repro import LatestConfig, make_machine, run_campaign
from repro.gpusim.spec import lookup_spec

INTENSITIES = (0.0, 0.01, 0.05, 0.30, 0.70, 0.90)


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "A100"
    spec = lookup_spec(model)
    ladder = spec.supported_memory_clocks_mhz[:3]
    print(
        f"memory-axis ablation on simulated {spec.name}: "
        f"memory clocks {', '.join(f'{f:g}' for f in ladder)} MHz, "
        f"SM locked at {spec.max_sm_frequency_mhz:g} MHz"
    )
    print(
        f"{'beta':>6} {'valid pairs':>12} {'measured':>9} "
        f"{'median rel err':>15} {'median lat [ms]':>16}"
    )

    for beta in INTENSITIES:
        machine = make_machine(model, seed=4242)
        config = LatestConfig(
            frequencies=ladder,
            axis="memory",
            kernel_memory_intensity=beta,
            record_sm_count=8,
            min_measurements=6,
            max_measurements=12,
            rse_check_every=3,
        )
        result = run_campaign(machine, config)
        measured = list(result.iter_measured())
        rel_errors, lats = [], []
        for pair in measured:
            lat = pair.latencies_s()
            truth = pair.ground_truths_s()
            finite = np.isfinite(truth)
            rel_errors.extend(np.abs(lat[finite] - truth[finite]) / truth[finite])
            lats.extend(lat)
        n_valid = (
            len(result.phase1.valid_pairs) if result.phase1 is not None else 0
        )
        err = f"{np.median(rel_errors):15.3f}" if rel_errors else f"{'-':>15}"
        lat_ms = f"{np.median(lats) * 1e3:16.2f}" if lats else f"{'-':>16}"
        print(
            f"{beta:>6g} {n_valid:>8d}/{len(result.pairs):<3d} "
            f"{len(measured):>9d} {err} {lat_ms}"
        )


if __name__ == "__main__":
    main()
