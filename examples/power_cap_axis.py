#!/usr/bin/env python3
"""Power-cap axis: measure power-limit switching latency end to end.

Sweeps the board power-limit ladder of the chosen GPU through the same
phase-1/2/3 methodology the paper defines for SM clocks: the SM clock is
locked at the device maximum, each power limit caps the sustainable clock
(the ``SW_POWER_CAP`` throttle path), and the campaign measures how long
after ``nvmlDeviceSetPowerManagementLimit`` the new cap is actually
enforced — compared against the simulator's ``PowerCapLatencyProfile``
ground truth, a validation axis real hardware lacks.

Run:  python examples/power_cap_axis.py [A100|GH200|RTX6000] [workers]
"""

import sys

import numpy as np

from repro import LatestConfig, make_machine, run_campaign
from repro.analysis.render import render_table2
from repro.analysis.summary import summarize_campaign
from repro.gpusim.spec import lookup_spec


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "A100"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else None
    spec = lookup_spec(model)
    limits = spec.supported_power_limits_w

    machine = make_machine(model, seed=1234)
    config = LatestConfig(
        frequencies=limits,
        axis="power",
        record_sm_count=12,
        min_measurements=10,
        max_measurements=25,
        rse_check_every=5,
        output_dir="campaign_output_power",
    )
    print(
        f"running {len(config.pairs())} power-limit pairs "
        f"({', '.join(f'{w:g}' for w in limits)} W) on simulated {spec.name}"
        + (f" with {workers} workers ..." if workers else " ...")
    )
    result = run_campaign(machine, config, workers=workers)

    print(
        f"\nSM clock locked at {result.locked_sm_mhz:g} MHz; each limit "
        "caps the sustainable clock:"
    )
    thermal = machine.devices[0].thermal
    for limit in limits:
        cap = min(
            float(thermal.sustainable_clock_mhz(limit)),
            spec.max_sm_frequency_mhz,
        )
        print(f"  {limit:6g} W -> {cap:7.1f} MHz")

    print()
    for pair in result.iter_measured():
        measured = float(np.median(pair.latencies_s()))
        truth = float(np.nanmedian(pair.ground_truths_s()))
        print(
            f"{pair.init_mhz:6g} -> {pair.target_mhz:6g} W: "
            f"n={pair.n_measurements:3d}  "
            f"median={measured * 1e3:7.2f} ms  "
            f"ground truth={truth * 1e3:7.2f} ms  "
            f"rel err={abs(measured - truth) / truth * 100:5.1f} %"
        )

    print()
    print(render_table2([summarize_campaign(result)]))
    print(
        f"\n{result.n_measured_pairs} pairs measured over "
        f"{result.wall_virtual_s:.0f} s of simulated device time; CSVs in "
        "./campaign_output_power"
    )


if __name__ == "__main__":
    main()
