#!/usr/bin/env python3
"""CPU vs GPU frequency switching latency (paper Sec. VII comparison).

Runs FTaLaT (the CPU methodology, confidence-interval detection) on a
simulated server CPU core and the LATEST methodology on a simulated A100,
then prints both distributions side by side.  The paper's claim: "CPUs
complete the frequency transitions in microseconds, or units of
milliseconds at most, while GPUs require significantly more time, ranging
from tens to hundreds of milliseconds."

Run:  python examples/cpu_vs_gpu.py
"""

import numpy as np

from repro import LatestConfig, make_machine, run_campaign
from repro.ftalat import CpuCore, FtalatConfig, run_ftalat
from repro.simtime.clock import VirtualClock
from repro.simtime.host import HostCpu


def main() -> None:
    # --- CPU side: FTaLaT on a simulated Xeon core ---------------------
    clock = VirtualClock()
    host = HostCpu(clock, rng=np.random.default_rng(5))
    core = CpuCore(host)
    cpu_freqs = (1200.0, 2200.0, 3100.0)
    print("running FTaLaT on simulated CPU ...")
    cpu = run_ftalat(core, cpu_freqs, FtalatConfig(repeats=8))
    cpu_ms = cpu.all_latencies_s() * 1e3

    # --- GPU side: LATEST on a simulated A100 --------------------------
    machine = make_machine("A100", seed=5)
    config = LatestConfig(
        frequencies=(705.0, 1095.0, 1410.0),
        record_sm_count=12,
        min_measurements=15,
        max_measurements=30,
        rse_check_every=5,
    )
    print("running LATEST on simulated A100 ...")
    gpu = run_campaign(machine, config)
    gpu_ms = gpu.all_latencies_s() * 1e3

    print(f"\n{'':18} {'n':>5} {'min':>9} {'median':>9} {'max':>9}  [ms]")
    print(
        f"{'CPU (FTaLaT)':18} {cpu_ms.size:5d} {cpu_ms.min():9.3f} "
        f"{np.median(cpu_ms):9.3f} {cpu_ms.max():9.3f}"
    )
    print(
        f"{'GPU (LATEST)':18} {gpu_ms.size:5d} {gpu_ms.min():9.3f} "
        f"{np.median(gpu_ms):9.3f} {gpu_ms.max():9.3f}"
    )
    print(
        f"\nGPU/CPU median latency ratio: "
        f"{np.median(gpu_ms) / np.median(cpu_ms):.0f}x"
    )


if __name__ == "__main__":
    main()
