#!/usr/bin/env python3
"""Manufacturing variability across four A100 units (paper Sec. VII-C).

Benchmarks the same frequency set on four simulated A100 devices of one
node (distinct manufacturing serials), then reports:

* the per-pair range of best-case and worst-case latencies across units
  (the data behind paper Figs. 7 and 8),
* the pairs with the highest cross-unit spread (Fig. 9's selection),
* whether any unit is consistently the slowest (the paper found none).

Run:  python examples/multi_gpu_variability.py
"""

from repro import LatestConfig, make_machine, run_campaign
from repro.analysis.render import render_matrix
from repro.analysis.variability import variability_report


def main() -> None:
    n_units = 4
    frequencies = (705.0, 885.0, 1065.0, 1260.0, 1410.0)
    machine = make_machine("A100", n_gpus=n_units, seed=2024)

    results = []
    for index in range(n_units):
        config = LatestConfig(
            frequencies=frequencies,
            device_index=index,
            record_sm_count=12,
            min_measurements=15,
            max_measurements=30,
            rse_check_every=5,
        )
        print(f"benchmarking GPU {index} ...")
        results.append(run_campaign(machine, config))

    report = variability_report(results)

    print("\nRanges of best-case switching latencies across units [ms] (Fig. 7):")
    print(
        render_matrix(
            report.range_matrix_ms("min"),
            report.frequencies_mhz,
            report.frequencies_mhz,
            corner="init\\tgt",
            fmt="{:8.3f}",
        )
    )
    print("\nRanges of worst-case switching latencies across units [ms] (Fig. 8):")
    print(
        render_matrix(
            report.range_matrix_ms("max"),
            report.frequencies_mhz,
            report.frequencies_mhz,
            corner="init\\tgt",
            fmt="{:8.3f}",
        )
    )

    print("\nHighest-spread pairs across units (Fig. 9):")
    for spread in report.top_spread_pairs(3, case="max"):
        per_unit = ", ".join(f"{v:.2f}" for v in spread.per_unit_values_ms)
        print(
            f"  {spread.key[0]:g}->{spread.key[1]:g} MHz: per-unit worst "
            f"case [{per_unit}] ms, range {spread.range_ms:.2f} ms"
        )

    slowest = report.consistently_slowest_unit("max")
    hist = report.slowest_unit_histogram("max")
    print(f"\nslowest-unit histogram (per pair): {list(hist)}")
    if slowest is None:
        print("no unit is consistently slower — matching the paper's finding")
    else:
        print(f"unit {slowest} dominates the worst cases")


if __name__ == "__main__":
    main()
