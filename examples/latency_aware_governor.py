#!/usr/bin/env python3
"""Using measured latency tables in a DVFS runtime (paper Sec. VIII).

1. Measure a switching-latency table on a simulated GH200 — including a
   pathological target frequency (the 1875 MHz band).
2. Run a synthetic phase-changing application under three governors:
   static maximum clock, a naive latency-oblivious governor, and a
   latency-aware governor that skips unprofitable switches and routes
   around expensive pairs.

Run:  python examples/latency_aware_governor.py
"""

from repro import LatestConfig, make_machine, run_campaign
from repro.governor import (
    LatencyAwareGovernor,
    LatencyTable,
    NaiveGovernor,
    StaticGovernor,
    make_phased_application,
    simulate_governor,
)


def main() -> None:
    machine = make_machine("GH200", seed=31)
    # 1260 MHz sits in GH200's pathological target band (latencies up to
    # hundreds of ms); 1305 MHz is its fast neighbour — the detour a
    # latency-aware runtime can exploit.
    frequencies = (1260.0, 1305.0, 1410.0, 1980.0)
    config = LatestConfig(
        frequencies=frequencies,
        record_sm_count=12,
        min_measurements=12,
        max_measurements=25,
        rse_check_every=4,
    )
    print("measuring the switching-latency table on simulated GH200 ...")
    campaign = run_campaign(machine, config)
    table = LatencyTable.from_campaign(campaign, statistic="max")

    print("\nworst-case latency table [ms]:")
    for (init, target), lat in sorted(table.latency_s.items()):
        print(f"  {init:6g} -> {target:6g}: {lat * 1e3:8.2f}")

    # Memory-bound phases prefer ~64 % of the max clock — which lands on
    # the pathological 1260 MHz target.
    app = make_phased_application(
        machine.device().spec, n_phases=80, seed=7, memory_optimal_ratio=0.636
    )
    print(f"\napplication: {len(app.phases)} phases {app.kinds()}")

    runs = [
        simulate_governor(app, StaticGovernor(max(frequencies))),
        simulate_governor(app, NaiveGovernor(table)),
        simulate_governor(app, LatencyAwareGovernor(table)),
    ]
    baseline = runs[0]

    print(f"\n{'governor':>15} {'time s':>9} {'energy J':>10} {'switches':>9} "
          f"{'stale s':>9} {'dE vs static':>13} {'dT vs static':>13}")
    for run in runs:
        print(
            f"{run.governor_name:>15} {run.total_time_s:9.2f} "
            f"{run.total_energy_j:10.1f} {run.n_switches:9d} "
            f"{run.stale_time_s:9.3f} "
            f"{run.energy_savings_vs(baseline) * 100:12.1f}% "
            f"{run.runtime_penalty_vs(baseline) * 100:12.1f}%"
        )

    naive, aware = runs[1], runs[2]
    print(
        f"\nlatency-aware vs naive: "
        f"{aware.energy_savings_vs(naive) * 100:+.1f}% energy, "
        f"{-aware.runtime_penalty_vs(naive) * 100:+.1f}% runtime, "
        f"{naive.n_switches - aware.n_switches} switches avoided"
    )


if __name__ == "__main__":
    main()
