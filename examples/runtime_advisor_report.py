#!/usr/bin/env python3
"""From measurement to runtime design: advisor + full campaign report.

Measures a GH200 frequency subset that includes a pathological target band,
then derives the artifacts a DVFS-runtime designer needs (paper Sec. VIII):

* pathological targets and pairs to avoid, with cheap detours,
* minimum region lengths for profitable switches (COUNTDOWN-style
  boundary classification against *measured* latencies),
* a full markdown report written to ./campaign_report.md, including the
  ground-truth recovery scores only a simulator can provide.

Run:  python examples/runtime_advisor_report.py
"""

from repro import LatestConfig, make_machine, run_campaign
from repro.analysis.advisor import RuntimeAdvisor
from repro.analysis.report import write_campaign_report
from repro.analysis.validation import score_recovery


def main() -> None:
    machine = make_machine("GH200", seed=88)
    config = LatestConfig(
        frequencies=(1095.0, 1260.0, 1305.0, 1665.0, 1980.0),
        record_sm_count=12,
        min_measurements=15,
        max_measurements=30,
        rse_check_every=5,
    )
    print("measuring GH200 subset (includes the 1260 MHz special band) ...")
    result = run_campaign(machine, config)

    advisor = RuntimeAdvisor(result, residency_factor=3.0, avoid_factor=5.0)
    print(f"\ncampaign median worst case: "
          f"{advisor.median_worst_case_s * 1e3:.1f} ms")

    pathological = advisor.pathological_targets()
    if pathological:
        print("pathological target frequencies: "
              + ", ".join(f"{t:g} MHz" for t in pathological))

    print("\npairs to avoid (with detours):")
    for advice in advisor.pairs_to_avoid():
        detour = (
            f" -> detour via {advice.detour_target_mhz:g} MHz "
            f"({advice.detour_worst_case_s * 1e3:.1f} ms)"
            if advice.detour_target_mhz is not None
            else " (no cheap detour nearby)"
        )
        print(
            f"  {advice.key[0]:6g} -> {advice.key[1]:6g}: worst "
            f"{advice.worst_case_s * 1e3:7.1f} ms{detour}"
        )

    print("\nregion classification examples (init=1980 MHz):")
    for target, region_ms in ((1260.0, 20.0), (1260.0, 2000.0), (1305.0, 60.0)):
        decision = advisor.classify_region(1980.0, target, region_ms * 1e-3)
        print(f"  {region_ms:7.0f} ms region wanting {target:g} MHz: {decision}")

    recovery = score_recovery(result)
    print()
    for line in recovery.summary_lines():
        print(line)

    path = write_campaign_report(result, "campaign_report.md")
    print(f"\nfull markdown report written to {path}")


if __name__ == "__main__":
    main()
